"""All-pairs shortest paths and the incremental one/two-edge distance engine.

Graphs are ``networkx.Graph`` objects whose nodes are ``0 .. n-1``.  Distances
live in dense ``numpy`` ``int64`` matrices; pairs in different components hold
the game's big constant ``M`` (see :mod:`repro._alpha`), never ``inf``, so all
arithmetic stays integral and exact.  Float results coming back from scipy are
converted with an **exact integer fill**: finite hop counts (< ``2**53``) cast
losslessly and the ``inf`` mask is overwritten with the exact Python integer
sentinel afterwards, so even ``M > 2**53`` round-trips bit-exactly.

The identities behind the engine:

* adding edge ``uv``:  ``d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y),
  d(x, v) + 1 + d(u, y))`` — a shortest path uses a fresh edge at most once,
  so the whole matrix updates with one vectorised outer minimum, no search;
* removing edge ``uv``: only pairs whose *every* shortest path crossed ``uv``
  can change, and any such pair has an endpoint whose distance to ``u`` or
  ``v`` changed.  The repair therefore re-runs BFS from the **affected rows**
  only (found with two probe BFS runs from ``u`` and ``v``); on small graphs
  the probes and the repair run as pure-Python BFS (the C-level call carries
  ~100us of fixed overhead), larger repairs batch into a single C-level
  call.  When ``uv`` is a **bridge** — on *any* graph, forests being the
  special case where every edge qualifies — the BFS-repair path is never
  entered: the component splits into the two sides of the bridge cut,
  read off the cached matrix (``d(x, u)`` vs ``d(x, v)``), every cross
  pair jumps to the sentinel and every within-side distance is unchanged
  (a simple shortest path cannot cross the cut twice) — exact answers
  with no search at all.

**The bridge contract.**  The engine owns an incrementally maintained
:class:`~repro.graphs.bridges.BridgeSet`: one chain-decomposition build
at materialisation (spy-counted by
:data:`repro.graphs.bridges.BRIDGE_REBUILDS`), then O(affected) updates
ride along every ``apply_add`` / ``apply_remove`` / ``undo`` — a
vectorised side test kills the bridges a new cycle absorbs, a bridge
removal deletes only itself, and only a *non-bridge* removal pays a
component-local sweep (already dominated by that removal's BFS repair).
Consequently removals dispatch exactly: bridge removals (and the
speculative queries ``rows_after_remove`` / ``row_after_remove`` /
``remove_loss_pair`` on bridges) are search-free matrix reads, while
non-bridge removals BFS-repair the affected rows, spy-counted by
:data:`REMOVE_BFS_REPAIRS`.  ``is_forest`` is derived as
``|bridges| == |edges|``, so it also recovers when deletions make a
cyclic graph acyclic again.

:class:`DistanceMatrix` exposes these as in-place ``apply_add`` /
``apply_remove`` / ``apply_swap`` mutators.  Each returns an
:class:`UndoToken`; calling :meth:`DistanceMatrix.undo` restores the matrix,
the graph, and the cached CSR adjacency bit-exactly.  Tokens are strictly
LIFO (enforced by a version counter), which is exactly what schedulers need
to speculatively evaluate a move and roll it back.  ``M`` must satisfy
``fits_int64(M)`` so the add-update's ``M + 1 + M`` worst case cannot
overflow ``int64``.

Updates are **exact** in every case: additions by the outer-min identity,
forest removals by the two-component formula, general removals by fresh BFS
over the affected rows.  The only cost difference is that a general removal
whose affected set is large degrades towards a full rebuild — it is never
wrong, just slower.

Per-row distance totals (``totals()`` / ``total(u)``) are maintained
**incrementally** alongside the matrix: the first query pays one full
``O(n^2)`` row-sum (counted by the :data:`TOTALS_REBUILDS` spy), after which
every ``apply_*`` and ``undo`` shifts the affected entries from the same row
patches it already records — ``O(|affected| * n)`` per mutation, never a
full re-sum.  Because the matrix is symmetric and every changed entry has an
endpoint among the patched rows, the shift

    ``totals += delta.sum(axis=0)``
    ``totals[rows] += delta.sum(axis=1) - delta[:, rows].sum(axis=1)``

(with ``delta`` the patched rows' new-minus-old values) is exact.

When a **traffic matrix** is bound (:meth:`DistanceMatrix.bind_traffic`),
the per-row *weighted* totals ``wtotals()`` — ``sum_v W[u, v] * d(u, v)``
for an int64 demand matrix ``W`` — are maintained by the same discipline:
one full weighted row-sum at first query (counted by the
:data:`WTOTALS_REBUILDS` spy), then every ``apply_*`` / ``undo`` shifts
the cached vector from the very same row patches.  The shift generalises
the uniform one entry-wise (``d`` is symmetric, ``W`` need not be):
column ``y`` gains ``sum_{x in rows} W[y, x] * delta[x, y]`` and patched
row ``x`` additionally gains its own weighted row delta minus the
doubly-counted patched-column part — ``O(|affected| * n)`` per mutation,
never a full re-sum.

When a **cost model** is bound (:meth:`DistanceMatrix.bind_cost_model`),
the per-row *model aggregates* ``ftotals()`` ride the very same row
patches.  For a sum aggregate ``sum_v W[u, v] * f(d(u, v))`` the shift is
the weighted shift applied to the entry-wise **value delta**
``f(new) - f(old)`` instead of the distance delta (``f`` of a symmetric
matrix is symmetric, so the same endpoint argument holds).  For a max
aggregate ``max_v W[u, v] * f(d(u, v))`` the engine maintains each row's
max *with its multiplicity*: a patched entry above the cached max raises
it outright, one at the max bumps the count, and only a row whose
count-at-max drains to zero pays a fresh ``O(n)`` row scan — still
incremental maintenance, not a rebuild.  Either way the first query pays
one full ``O(n^2)`` pass (spy-counted by :data:`FTOTALS_REBUILDS`), then
zero along move trajectories.  Sentinel entries are exact here too: real
distances are at most ``n - 1`` and the sentinel is at least ``n``, so
``d >= n`` identifies unreachable pairs and maps them to the model's own
value sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import networkx as nx
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import (
    connected_components,
    shortest_path,
)

from repro import _backend
from repro._alpha import fits_int64
from repro._backend import exact_int_fill as _exact_int_fill
from repro.graphs.bridges import BridgeSet
from repro.obs import metrics as obs
from repro.obs import trace as _trace

__all__ = [
    "DistanceMatrix",
    "UndoToken",
    "adjacency_bool",
    "adjacency_csr",
    "apsp_build_count",
    "apsp_matrix",
    "added_edge_dist_gain",
    "component_labels",
    "dist_vector_after_add",
    "ftotals_rebuild_count",
    "is_connected",
    "remove_bfs_repair_count",
    "removed_edge_dist_vector",
    "single_source_distances",
    "total_distances",
    "totals_rebuild_count",
    "weighted_added_edge_dist_gain",
    "wtotals_rebuild_count",
]

#: Number of full APSP builds since import — a test/benchmark spy used to
#: assert that a dynamics trajectory pays for exactly one build.  Lives in
#: the :mod:`repro.obs` registry (thread-safe increments — engine builds
#: race under the serve thread pool); ``distances.APSP_BUILDS`` remains a
#: read-only alias via module ``__getattr__``, as do the other spies.
_APSP_BUILDS = obs.counter(
    "repro_engine_apsp_builds_total", "full APSP matrix builds"
)

#: Full O(n^2) row-sum rebuilds of the per-row totals — a spy used to
#: assert that totals are maintained incrementally along move
#: trajectories (one rebuild at materialisation, then zero).
_TOTALS_REBUILDS = obs.counter(
    "repro_engine_totals_rebuilds_total", "full totals row-sum rebuilds"
)

#: Full O(n^2) weighted row-sum rebuilds — the traffic-model counterpart:
#: one rebuild at first ``wtotals()`` query per engine, zero along move
#: trajectories.
_WTOTALS_REBUILDS = obs.counter(
    "repro_engine_wtotals_rebuilds_total",
    "full weighted-totals row-sum rebuilds",
)

#: Full O(n^2) model-value passes rebuilding the per-row cost aggregates —
#: the cost-model counterpart: one rebuild at first ``ftotals()`` query per
#: engine, zero along move trajectories (max-row rescans triggered by a
#: drained count are incremental maintenance and do not count).
_FTOTALS_REBUILDS = obs.counter(
    "repro_engine_ftotals_rebuilds_total", "full model-aggregate rebuilds"
)

#: ``apply_remove`` calls that entered the BFS-repair path — a spy used to
#: assert that bridge removals (forests included) always take the
#: search-free split path instead.
_REMOVE_BFS_REPAIRS = obs.counter(
    "repro_engine_remove_bfs_repairs_total",
    "apply_remove calls that entered the BFS-repair path",
)

#: Matrix rows actually recomputed by BFS repair — the volume companion of
#: the call counter above: how much repair work non-bridge removals cost.
_BFS_REPAIR_ROWS = obs.counter(
    "repro_engine_bfs_repair_rows_total",
    "distance-matrix rows recomputed by the BFS-repair path",
)

#: legacy module-global spy name -> registry counter (read-only aliases)
_SPY_ALIASES = {
    "APSP_BUILDS": _APSP_BUILDS,
    "TOTALS_REBUILDS": _TOTALS_REBUILDS,
    "WTOTALS_REBUILDS": _WTOTALS_REBUILDS,
    "FTOTALS_REBUILDS": _FTOTALS_REBUILDS,
    "REMOVE_BFS_REPAIRS": _REMOVE_BFS_REPAIRS,
}


def __getattr__(name: str) -> int:
    counter = _SPY_ALIASES.get(name)
    if counter is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return counter.value


def apsp_build_count() -> int:
    """How many full APSP matrices have been built since import."""
    return _APSP_BUILDS.value


def totals_rebuild_count() -> int:
    """How many full totals re-sums have been performed since import."""
    return _TOTALS_REBUILDS.value


def wtotals_rebuild_count() -> int:
    """How many full weighted-totals re-sums have been performed."""
    return _WTOTALS_REBUILDS.value


def ftotals_rebuild_count() -> int:
    """How many full model-aggregate rebuilds have been performed."""
    return _FTOTALS_REBUILDS.value


def remove_bfs_repair_count() -> int:
    """How many removals have entered the BFS-repair path since import."""
    return _REMOVE_BFS_REPAIRS.value


def _require_canonical(graph: nx.Graph) -> int:
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("graphs must have at least one node")
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph nodes must be 0..n-1; use canonical_labels()")
    return n


def canonical_labels(graph: nx.Graph) -> nx.Graph:
    """Relabel an arbitrary graph to integer nodes ``0..n-1`` (sorted order).

    Node sorting falls back to string order for mixed-type labels so the
    mapping is deterministic.
    """
    try:
        ordered = sorted(graph.nodes)
    except TypeError:
        ordered = sorted(graph.nodes, key=str)
    mapping = {node: index for index, node in enumerate(ordered)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def adjacency_bool(graph: nx.Graph) -> np.ndarray:
    """Dense boolean adjacency matrix (shared by the swap searchers)."""
    n = _require_canonical(graph)
    dense = np.zeros((n, n), dtype=bool)
    if graph.number_of_edges():
        edges = np.asarray(graph.edges, dtype=np.int64)
        dense[edges[:, 0], edges[:, 1]] = True
        dense[edges[:, 1], edges[:, 0]] = True
    return dense


def adjacency_csr(graph: nx.Graph) -> csr_matrix:
    """Symmetric 0/1 adjacency in CSR form for scipy's C-level BFS.

    The coordinate arrays are built in one shot from the edge array rather
    than edge-by-edge in Python.
    """
    n = _require_canonical(graph)
    m = graph.number_of_edges()
    if m == 0:
        return csr_matrix((n, n), dtype=np.int8)
    edges = np.asarray(graph.edges, dtype=np.int64)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    data = np.ones(2 * m, dtype=np.int8)
    return csr_matrix((data, (rows, cols)), shape=(n, n))


def apsp_matrix(graph: nx.Graph, unreachable: int) -> np.ndarray:
    """Dense all-pairs shortest path matrix with ``unreachable`` for no path.

    Runs one BFS per node in C via scipy; ``O(n * m)`` total.  Increments
    the module's :data:`APSP_BUILDS` spy counter.
    """
    _APSP_BUILDS.inc()
    n = _require_canonical(graph)
    with _trace.span("engine.apsp_build", n=n, m=graph.number_of_edges()):
        if graph.number_of_edges() == 0:
            dist = np.full((n, n), unreachable, dtype=np.int64)
            np.fill_diagonal(dist, 0)
            return dist
        raw = shortest_path(
            adjacency_csr(graph), method="D", unweighted=True
        )
        return _exact_int_fill(raw, unreachable)


def _rows_from_csr(
    adjacency: csr_matrix, sources, unreachable: int
) -> np.ndarray:
    """BFS distance rows for several sources in one batched call.

    Dispatches to the active numerical backend
    (:func:`repro._backend.active`): scipy's C-level dijkstra on the
    numpy arm, an ``@njit`` CSR BFS on the numba arm — bit-identical by
    the backend exactness contract.
    """
    return _backend.active().bfs_rows(adjacency, sources, unreachable)


#: Below this node count the engine answers removal probes with pure-Python
#: BFS over the networkx adjacency instead of scipy calls: the C-level path
#: carries ~200us of fixed overhead per call (sparse arithmetic + dijkstra
#: setup), which dwarfs an actual BFS on a small graph.  Exactness is
#: identical; this is purely a constant-factor dispatch, re-measured by
#: ``benchmarks/bench_small_n_dispatch.py`` (record in
#: ``benchmarks/baselines/BENCH_small_n_dispatch.json``, refreshed
#: 2026-08: the Python arm wins 1-2 row probes by >= 1.6x through
#: n = 160 and still ~1.2x at 288, while the full apply+undo cycle
#: flips to the C arm near n = 72 — 160 stays the compromise between
#: the probe-heavy and repair-heavy workloads; both arms' bit-exact
#: agreement around the threshold is guarded by
#: ``tests/test_cross_validation.py``).
_SMALL_N = 160

#: Batched row repairs stay in Python only while ``rows * n`` is below
#: ``_SMALL_N * _REPAIR_BATCH_FACTOR`` cells; beyond that one batched
#: C-level call wins (measured break-even: a fixed call costs about as
#: much as 3-4 Python BFS rows at n = 160).
_REPAIR_BATCH_FACTOR = 4


def _bfs_row_py(
    adj,
    source: int,
    n: int,
    unreachable: int,
    skip_a: int = -1,
    skip_b: int = -1,
) -> np.ndarray:
    """One BFS distance row computed in pure Python (small graphs only).

    ``skip_a``/``skip_b`` mask one edge out of the traversal, so pure
    removal *queries* can run on the live adjacency without ever
    mutating the graph.
    """
    dist = [-1] * n
    dist[source] = 0
    queue = [source]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        step = dist[node] + 1
        for neighbor in adj[node]:
            if dist[neighbor] < 0:
                if neighbor == skip_b and node == skip_a:
                    continue
                if neighbor == skip_a and node == skip_b:
                    continue
                dist[neighbor] = step
                queue.append(neighbor)
    row = np.array(dist, dtype=np.int64)
    if len(queue) < n:
        row[row < 0] = unreachable
    return row


def single_source_distances(
    graph: nx.Graph, source: int, unreachable: int
) -> np.ndarray:
    """BFS distances from ``source`` as an int64 vector (no Python loop)."""
    n = _require_canonical(graph)
    if graph.degree(source) == 0:
        dist = np.full(n, unreachable, dtype=np.int64)
        dist[source] = 0
        return dist
    return _rows_from_csr(adjacency_csr(graph), source, unreachable)


def is_connected(graph: nx.Graph) -> bool:
    """Connectivity via one BFS (works on canonical graphs of any size)."""
    return nx.is_connected(graph)


def component_labels(graph: nx.Graph) -> np.ndarray:
    """Connected component index per node."""
    _require_canonical(graph)
    if graph.number_of_edges() == 0:
        return np.arange(graph.number_of_nodes(), dtype=np.int64)
    _, labels = connected_components(adjacency_csr(graph), directed=False)
    return labels.astype(np.int64)


def total_distances(dist: np.ndarray) -> np.ndarray:
    """Per-node total distance cost ``dist(u) = sum_v d(u, v)``.

    Safe in int64: ``GameState`` guarantees ``n * M`` fits (see
    :func:`repro._alpha.big_m` and :func:`repro._alpha.fits_int64`).
    """
    return dist.sum(axis=1)


def dist_vector_after_add(dist: np.ndarray, u: int, v: int) -> np.ndarray:
    """Distances from ``u`` after adding edge ``uv``: ``min(d_u, 1 + d_v)``."""
    return np.minimum(dist[u], 1 + dist[v])


def added_edge_dist_gain(dist: np.ndarray, u: int, v: int) -> int:
    """Strict decrease of ``dist(u)`` caused by adding edge ``uv``.

    Always non-negative.  The symmetric gain for ``v`` is obtained by
    swapping the arguments.
    """
    improvement = dist[u] - (1 + dist[v])
    return int(improvement[improvement > 0].sum())


def weighted_added_edge_dist_gain(
    dist: np.ndarray, weights_row: np.ndarray, u: int, v: int
) -> int:
    """Demand-weighted decrease of ``dist(u)`` when edge ``uv`` is added.

    ``weights_row`` is agent ``u``'s demand row; the single definition
    shared by the BAE checker and the speculative kernel so the two can
    never disagree on a weighted gain.
    """
    improvement = np.maximum(dist[u] - (1 + dist[v]), 0)
    return int((weights_row * improvement).sum())


def removed_edge_dist_vector(
    graph: nx.Graph, u: int, v: int, unreachable: int
) -> np.ndarray:
    """Distances from ``u`` after removing edge ``uv`` (one fresh BFS).

    The graph is restored before returning.
    """
    if not graph.has_edge(u, v):
        raise ValueError(f"edge {u}-{v} not in graph")
    graph.remove_edge(u, v)
    try:
        return single_source_distances(graph, u, unreachable)
    finally:
        graph.add_edge(u, v)


@dataclass(frozen=True)
class _RowPatch:
    """Old values of a set of matrix rows (columns follow by symmetry)."""

    rows: np.ndarray
    old: np.ndarray


@dataclass(frozen=True)
class UndoToken:
    """Everything needed to roll one ``apply_*`` mutation back.

    Tokens are LIFO: :meth:`DistanceMatrix.undo` checks the engine's version
    counter and refuses out-of-order undos.
    """

    patches: tuple[_RowPatch, ...]
    inverse_ops: tuple[tuple[str, int, int], ...]
    csr_before: csr_matrix | None
    version_before: int
    version_after: int
    bridge_deltas: tuple = ()


class DistanceMatrix:
    """Cached APSP for one graph, with exact in-place one-edge updates.

    This is the workhorse behind all polynomial equilibrium checkers and the
    dynamics engine.  The matrix is computed once; after that

    * :meth:`apply_add` updates the whole matrix with a vectorised outer
      minimum (exact, no search);
    * :meth:`apply_remove` takes the two-component split whenever the
      edge is a bridge of the current graph — forests being the special
      case where every edge qualifies — and otherwise repairs only the
      affected rows with batched BFS (exact in both cases, search-free
      in the first);
    * :meth:`apply_swap` composes the two;
    * :meth:`undo` rolls any of them back bit-exactly (LIFO order);
    * per-row ``totals()`` are maintained incrementally through all of the
      above (one full row-sum at first query, shifts afterwards).

    Speculative *queries* that never touch the matrix are also provided:
    ``row_after_add`` (from the matrix alone) and ``rows_after_remove``
    (BFS on a temporary CSR with the edge masked out; the cached CSR is
    reused, not rebuilt from the graph).

    ``unreachable`` must be at least ``n`` (so it exceeds every real
    distance) and satisfy ``fits_int64`` (headroom for ``2M + 1`` in the
    add update).
    """

    def __init__(self, graph: nx.Graph, unreachable: int):
        self.n = _require_canonical(graph)
        self.unreachable = int(unreachable)
        if self.unreachable < self.n:
            raise ValueError(
                "unreachable sentinel must be >= n to exceed real distances"
            )
        if not fits_int64(self.unreachable):
            raise ValueError(
                "unreachable sentinel too large for exact int64 arithmetic"
            )
        self._graph = graph
        self._csr: csr_matrix | None = None
        self._totals: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._wtotals: np.ndarray | None = None
        self._fbind = None
        self._ftotals: np.ndarray | None = None
        self._fcounts: np.ndarray | None = None
        self._version = 0
        # the exact bridge set powers the search-free split removal path on
        # any graph; built once here (chain decomposition), then maintained
        # in O(affected) through apply_* / undo — see repro.graphs.bridges
        self._bridges = BridgeSet(graph.adj, range(self.n))
        self.matrix = apsp_matrix(graph, self.unreachable)

    # -- plain queries ------------------------------------------------------

    def dist(self, u: int, v: int) -> int:
        return int(self.matrix[u, v])

    def row(self, u: int) -> np.ndarray:
        return self.matrix[u]

    def total(self, u: int) -> int:
        """``sum_v d(u, v)`` from the incrementally maintained totals."""
        return int(self._totals_live()[u])

    def totals(self) -> np.ndarray:
        """Per-node totals as a *snapshot copy* (safe across ``apply_*``).

        The first call pays one full row-sum; every later call is an
        ``O(n)`` copy because ``apply_*`` / ``undo`` shift the cached
        vector in place instead of re-summing the matrix.
        """
        return self._totals_live().copy()

    def _totals_live(self) -> np.ndarray:
        if self._totals is None:
            _TOTALS_REBUILDS.inc()
            self._totals = self.matrix.sum(axis=1)
        return self._totals

    # -- weighted totals (heterogeneous traffic) ----------------------------

    def bind_traffic(self, weights: np.ndarray) -> None:
        """Attach an int64 per-pair demand matrix ``W`` to the engine.

        Enables the incrementally maintained weighted totals
        ``wtotals()[u] = sum_v W[u, v] * d(u, v)``.  The caller (normally
        :class:`repro.core.state.GameState`) is responsible for the
        overflow headroom check ``fits_int64(unreachable * max_row_mass)``;
        a cheap guard here re-asserts it.  Re-binding the same array is a
        no-op; binding a different demand matrix drops the cached vector.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.n, self.n):
            raise ValueError(
                f"demand matrix shape {weights.shape} does not match n={self.n}"
            )
        if weights.dtype != np.int64:
            raise ValueError("demand matrix must be int64 (exact arithmetic)")
        if self._weights is weights:
            return
        if not fits_int64(self.unreachable * int(weights.sum(axis=1).max())):
            raise ValueError(
                "demand mass too large for exact int64 weighted totals"
            )
        self._weights = weights
        self._wtotals = None

    def wtotal(self, u: int) -> int:
        """``sum_v W[u, v] * d(u, v)`` from the maintained weighted totals."""
        return int(self._wtotals_live()[u])

    def wtotals(self) -> np.ndarray:
        """Per-node weighted totals as a snapshot copy.

        Requires a bound traffic matrix (:meth:`bind_traffic`).  The
        first call pays one full weighted row-sum (spy-counted by
        :data:`WTOTALS_REBUILDS`); afterwards ``apply_*`` / ``undo``
        shift the cached vector in place.
        """
        return self._wtotals_live().copy()

    def _wtotals_live(self) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError(
                "no traffic matrix bound; call bind_traffic() first"
            )
        if self._wtotals is None:
            _WTOTALS_REBUILDS.inc()
            self._wtotals = (self.matrix * self._weights).sum(axis=1)
        return self._wtotals

    # -- model aggregates (pluggable distance-cost models) ------------------

    def bind_cost_model(self, ops) -> None:
        """Attach model-value arithmetic to the engine.

        ``ops`` is duck-typed (the engine must not import ``repro.core``):
        it needs ``.n``, ``.aggregate`` (``"sum"`` or ``"max"``),
        ``.weights`` (``None`` or an int64 ``(n, n)`` demand matrix) and
        ``.apply_f(dist) -> values`` mapping a distance array through the
        model's table (sentinel distances ``>= n`` to the model's value
        sentinel).  Enables the incrementally maintained per-row
        aggregates :meth:`ftotals`.  The caller (normally
        :class:`repro.core.state.GameState`) is responsible for value-
        space overflow headroom.  Re-binding the same object is a no-op;
        binding a different one drops the cached vectors.
        """
        if getattr(ops, "n", None) != self.n:
            raise ValueError("cost model ops size does not match the engine")
        if getattr(ops, "aggregate", None) not in ("sum", "max"):
            raise ValueError("cost model ops must aggregate by sum or max")
        if self._fbind is ops:
            return
        self._fbind = ops
        self._ftotals = None
        self._fcounts = None

    def ftotal(self, u: int) -> int:
        """Agent ``u``'s model aggregate from the maintained vector."""
        return int(self._ftotals_live()[u])

    def ftotals(self) -> np.ndarray:
        """Per-node model aggregates as a snapshot copy.

        Requires a bound cost model (:meth:`bind_cost_model`).  The first
        call pays one full model-value pass (spy-counted by
        :data:`FTOTALS_REBUILDS`); afterwards ``apply_*`` / ``undo``
        shift the cached vector in place from the same row patches that
        maintain ``totals()`` / ``wtotals()``.
        """
        return self._ftotals_live().copy()

    def fmax_counts(self) -> np.ndarray:
        """Per-row multiplicity of the max value (max aggregates only).

        A test accessor: cross-validation asserts the maintained counts
        match a naive recount at every trajectory step.
        """
        if self._fcounts is None:
            raise RuntimeError("no max-aggregate cost model materialised")
        return self._fcounts.copy()

    def _fvalues(self, dist: np.ndarray) -> np.ndarray:
        """Model values of a distance array under the bound ops (weighted
        entry-wise by the demand matrix when one is attached)."""
        ops = self._fbind
        values = ops.apply_f(dist)
        if ops.weights is not None:
            values = values * ops.weights
        return values

    def _ftotals_live(self) -> np.ndarray:
        if self._fbind is None:
            raise RuntimeError(
                "no cost model bound; call bind_cost_model() first"
            )
        if self._ftotals is None:
            _FTOTALS_REBUILDS.inc()
            values = self._fvalues(self.matrix)
            if self._fbind.aggregate == "max":
                self._ftotals = values.max(axis=1)
                self._fcounts = (values == self._ftotals[:, None]).sum(axis=1)
            else:
                self._ftotals = values.sum(axis=1)
        return self._ftotals

    def _shift_totals(self, rows: np.ndarray, old: np.ndarray) -> None:
        """Shift cached (weighted) totals by the change ``matrix[rows] - old``.

        Exact because the matrix is symmetric and every changed entry has
        at least one endpoint among ``rows`` (the patch invariant of
        ``apply_add`` / ``apply_remove``).  The weighted shift reads the
        demand entry of each changed pair from the bound traffic matrix;
        demands may be asymmetric, only distances must be symmetric.
        """
        totals = self._totals
        wtotals = self._wtotals
        ftotals = self._ftotals
        if totals is None and wtotals is None and ftotals is None:
            return
        delta = self.matrix[rows] - old
        if totals is not None:
            totals += delta.sum(axis=0)
            totals[rows] += delta.sum(axis=1) - delta[:, rows].sum(axis=1)
        if wtotals is not None:
            weights = self._weights
            # column y gains sum_{x in rows} W[y, x] * delta[x, y] ...
            wtotals += (weights[:, rows] * delta.T).sum(axis=1)
            # ... and each patched row additionally gains its own weighted
            # row delta, minus the patched-column part already counted
            wtotals[rows] += (weights[rows] * delta).sum(axis=1) - (
                weights[np.ix_(rows, rows)] * delta[:, rows]
            ).sum(axis=1)
        if ftotals is not None:
            self._shift_ftotals(rows, old)

    def _shift_ftotals(self, rows: np.ndarray, old: np.ndarray) -> None:
        """Shift the cached model aggregates for the patch ``rows``/``old``.

        The value delta ``f(new) - f(old)`` inherits the distance delta's
        symmetry and endpoint coverage, so for a **sum** aggregate the
        weighted-totals shift applies verbatim in value space.  A **max**
        aggregate instead maintains each row's max with its multiplicity:
        only entries in the patched columns changed for an unpatched row,
        so a new value above the cached max raises it (the fresh count
        reads off the patched columns alone), equal values adjust the
        count, and only a row whose count drains to zero is rescanned.
        The update is symmetric in old/new, so :meth:`undo` drives it with
        the pre-restore values as ``old`` and lands bit-exactly.
        """
        ops = self._fbind
        ftotals = self._ftotals
        fnew = ops.apply_f(self.matrix[rows])
        fold_ = ops.apply_f(old)
        if ops.aggregate != "max":
            fdelta = fnew - fold_
            if ops.weights is None:
                ftotals += fdelta.sum(axis=0)
                ftotals[rows] += fdelta.sum(axis=1) - fdelta[:, rows].sum(
                    axis=1
                )
            else:
                weights = ops.weights
                ftotals += (weights[:, rows] * fdelta.T).sum(axis=1)
                ftotals[rows] += (weights[rows] * fdelta).sum(axis=1) - (
                    weights[np.ix_(rows, rows)] * fdelta[:, rows]
                ).sum(axis=1)
            return
        fcounts = self._fcounts
        # per-row weighted values of the changed entries, column view:
        # vnew_cols[y, j] = W[y, rows[j]] * f(d'(y, rows[j]))
        if ops.weights is None:
            vnew_cols = fnew.T
            vold_cols = fold_.T
        else:
            vnew_cols = ops.weights[:, rows] * fnew.T
            vold_cols = ops.weights[:, rows] * fold_.T
        colmax = vnew_cols.max(axis=1)
        raised = colmax > ftotals
        at_max = ftotals[:, None]
        stay_counts = (
            fcounts
            - (vold_cols == at_max).sum(axis=1)
            + (vnew_cols == at_max).sum(axis=1)
        )
        rescan = ~raised & (stay_counts <= 0)
        # patched rows changed wholesale (their row is the patch itself):
        # recompute them outright rather than reasoning per-column
        rescan[rows] = True
        update = raised & ~rescan
        if update.any():
            # every unpatched entry of an updated row is <= the old max
            # < colmax, so the new max and its count live in the patched
            # columns alone
            ftotals[update] = colmax[update]
            fcounts[update] = (
                vnew_cols[update] == colmax[update, None]
            ).sum(axis=1)
        keep = ~raised & ~rescan
        fcounts[keep] = stay_counts[keep]
        if rescan.any():
            values = ops.apply_f(self.matrix[rescan])
            if ops.weights is not None:
                values = values * ops.weights[rescan]
            ftotals[rescan] = values.max(axis=1)
            fcounts[rescan] = (values == ftotals[rescan, None]).sum(axis=1)

    def eccentricity(self, u: int) -> int:
        return int(self.matrix[u].max())

    @property
    def is_forest(self) -> bool:
        """Whether the current graph is acyclic (derived from the bridges).

        A graph is a forest iff every edge is a bridge, and the bridge set
        is maintained exactly through every mutation — so unlike the old
        one-way acyclicity flag this also recovers when deletions make a
        cyclic graph acyclic again.  Powers the searchers' fully
        query-based fold evaluation on forest instances.
        """
        return len(self._bridges) == self._graph.number_of_edges()

    def is_bridge(self, u: int, v: int) -> bool:
        """Whether edge ``uv`` is a bridge (O(1) off the maintained set).

        Bridge removals take the search-free split path in
        :meth:`apply_remove` and in every speculative removal query; they
        can also never be improving moves (disconnection costs at least
        ``M - n > alpha``), so generators skip them without any BFS.
        """
        return self._bridges.is_bridge(u, v)

    def bridges(self) -> frozenset:
        """The current bridge set as canonical ``(min, max)`` pairs."""
        return self._bridges.as_frozenset()

    def diameter(self) -> int:
        return int(self.matrix.max())

    # -- speculative queries (matrix untouched) -----------------------------

    def add_gain(self, u: int, v: int) -> int:
        """Distance-cost gain for ``u`` when edge ``uv`` is added."""
        return added_edge_dist_gain(self.matrix, u, v)

    def row_after_add(self, u: int, v: int) -> np.ndarray:
        return dist_vector_after_add(self.matrix, u, v)

    def _bridge_sides(self, u: int, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Side masks of bridge ``uv``'s cut, read off the cached matrix.

        ``x`` is on ``u``'s side iff ``d(x, u) < d(x, v)`` (every path
        between the sides crossed the bridge, so ties occur only for
        nodes of other components, which end up on neither side).  The
        single source of truth for :meth:`apply_remove`,
        :meth:`rows_after_remove_from` and
        :meth:`matrix_after_bridge_removal`.
        """
        return self.matrix[u] < self.matrix[v], self.matrix[v] < self.matrix[u]

    def rows_after_remove_from(
        self, u: int, v: int, sources
    ) -> np.ndarray:
        """Distance rows of ``sources`` in ``G - uv`` (no mutation).

        Bridges are search-free: each source keeps its side of the cut
        and loses the far side to the sentinel, all read off the cached
        matrix (sources in other components are unaffected).  Non-bridges
        BFS — in Python on small graphs (edge masked out of the
        traversal), in one batched C-level call on a temporary CSR
        otherwise.  Neither the matrix nor the graph is touched.
        """
        if not self._graph.has_edge(u, v):
            raise ValueError(f"edge {u}-{v} not in graph")
        sources = [int(source) for source in sources]
        matrix = self.matrix
        if self._bridges.is_bridge(u, v):
            side_u, side_v = self._bridge_sides(u, v)
            rows = np.empty((len(sources), self.n), dtype=np.int64)
            for position, source in enumerate(sources):
                to_u, to_v = matrix[source, u], matrix[source, v]
                if to_u < to_v:  # source on u's side: loses v's side
                    rows[position] = np.where(
                        side_v, self.unreachable, matrix[source]
                    )
                elif to_v < to_u:  # source on v's side: loses u's side
                    rows[position] = np.where(
                        side_u, self.unreachable, matrix[source]
                    )
                else:  # another component: removal cannot affect it
                    rows[position] = matrix[source]
            return rows
        if self.n <= _SMALL_N:
            adj = self._graph.adj
            return np.stack(
                [
                    _bfs_row_py(adj, source, self.n, self.unreachable, u, v)
                    for source in sources
                ]
            )
        return _rows_from_csr(
            self._csr_without(u, v), sources, self.unreachable
        )

    def rows_after_remove(self, u: int, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Rows of ``u`` and ``v`` in ``G - uv`` (bridge read or one BFS
        batch; see :meth:`rows_after_remove_from`)."""
        rows = self.rows_after_remove_from(u, v, (u, v))
        return rows[0], rows[1]

    def row_after_remove(self, u: int, v: int) -> np.ndarray:
        """Distances from ``u`` after removing edge ``uv``."""
        return self.rows_after_remove_from(u, v, (u,))[0]

    def matrix_after_bridge_removal(self, u: int, v: int) -> np.ndarray:
        """Full APSP matrix of ``G - uv`` for a *bridge* ``uv``.

        A fresh array derived entirely from the cached matrix (cross
        pairs to the sentinel, everything else unchanged) — no search,
        no mutation.  The swap searchers use it to evaluate every
        candidate partner against a bridge removal without touching the
        engine.
        """
        if not self._bridges.is_bridge(u, v):
            raise ValueError(f"edge {u}-{v} is not a bridge")
        side_u, side_v = self._bridge_sides(u, v)
        removed = self.matrix.copy()
        cross = side_u[:, None] & side_v[None, :]
        removed[cross] = self.unreachable
        removed[cross.T] = self.unreachable
        return removed

    def remove_loss(self, u: int, v: int) -> int:
        """Distance-cost increase for ``u`` when edge ``uv`` is removed."""
        after = self.row_after_remove(u, v)
        return int((after - self.matrix[u]).sum())

    def remove_loss_pair(self, u: int, v: int) -> tuple[int, int]:
        """Distance-cost increases of both endpoints when ``uv`` is removed.

        One temporary CSR, one batched BFS — the shared evaluation behind
        the RE checker and the removal move generator.
        """
        row_u, row_v = self.rows_after_remove(u, v)
        return (
            int((row_u - self.matrix[u]).sum()),
            int((row_v - self.matrix[v]).sum()),
        )

    # -- cached CSR adjacency ----------------------------------------------

    @property
    def csr(self) -> csr_matrix:
        """CSR adjacency of the current graph (cached across queries)."""
        if self._csr is None:
            self._csr = adjacency_csr(self._graph)
        return self._csr

    def _edge_csr(self, u: int, v: int) -> csr_matrix:
        data = np.ones(2, dtype=np.int8)
        return csr_matrix(
            (data, ([u, v], [v, u])), shape=(self.n, self.n)
        )

    def _csr_without(self, u: int, v: int) -> csr_matrix:
        masked = self.csr - self._edge_csr(u, v)
        masked.eliminate_zeros()
        return masked

    # -- in-place updates ---------------------------------------------------

    def rebind(self, graph: nx.Graph) -> None:
        """Transfer the engine onto an equal copy of its graph.

        Used by :meth:`repro.core.state.GameState.apply` to hand the matrix
        to a successor state that owns a fresh graph copy, so in-place
        updates never mutate the predecessor's graph.
        """
        if (
            graph.number_of_nodes() != self.n
            or graph.number_of_edges() != self._graph.number_of_edges()
        ):
            raise ValueError("rebind target must be an equal copy")
        self._graph = graph

    def apply_add(self, u: int, v: int) -> UndoToken:
        """Add edge ``uv`` and update the whole matrix in place (exact).

        ``d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y),
        d(x, v) + 1 + d(u, y))``; disconnected legs carry the ``M``
        sentinel, making every through-candidate exceed ``M``, so sentinel
        entries survive exactly.  Returns an undo token.
        """
        if u == v:
            raise ValueError("self-loops are not valid edges")
        if self._graph.has_edge(u, v):
            raise ValueError(f"edge {u}-{v} already exists")
        matrix = self.matrix
        # the bridge update needs the pre-add matrix: dying bridges are
        # found by a side test against the old distances
        bridge_delta = self._bridges.note_add(u, v, matrix, self.unreachable)
        via = matrix[u][:, None] + (matrix[v][None, :] + 1)
        candidate = np.minimum(via, via.T)
        changed_rows = np.flatnonzero((candidate < matrix).any(axis=1))
        patches = ()
        if changed_rows.size:
            patches = (
                _RowPatch(rows=changed_rows, old=matrix[changed_rows].copy()),
            )
            np.minimum(matrix, candidate, out=matrix)
            self._shift_totals(changed_rows, patches[0].old)
        # invalidate rather than patch the CSR: speculative add/undo cycles
        # never pay for sparse arithmetic, and the token restores the cache
        csr_before = self._csr
        self._csr = None
        self._graph.add_edge(u, v)
        return self._finish(
            patches, (("remove", u, v),), csr_before, (bridge_delta,)
        )

    def apply_remove(self, u: int, v: int) -> UndoToken:
        """Remove edge ``uv`` and repair the matrix in place (exact).

        If ``uv`` is a **bridge** (every forest edge is one), the deletion
        splits its component into ``{x : d(x, u) < d(x, v)}`` and
        ``{x : d(x, v) < d(x, u)}`` (every path between the sides crossed
        ``uv``, so ties cannot occur) and every cross pair becomes
        ``unreachable`` — both sides are read off the cached matrix, no
        search.  Otherwise two probe BFS runs from ``u`` and ``v``
        identify the affected rows (every changed pair has an endpoint
        among them) and a batched repair recomputes exactly those rows
        (spy-counted by :data:`REMOVE_BFS_REPAIRS`).  Returns an undo
        token.
        """
        if not self._graph.has_edge(u, v):
            raise ValueError(f"edge {u}-{v} not in graph")
        matrix = self.matrix
        csr_before = self._csr
        if self._bridges.is_bridge(u, v):
            side_u, side_v = self._bridge_sides(u, v)
            # every changed entry is a cross pair, so the smaller side's
            # rows (restored as rows *and* columns) cover all of them
            small = side_u if side_u.sum() <= side_v.sum() else side_v
            small_rows = np.flatnonzero(small)
            patches = (
                _RowPatch(rows=small_rows, old=matrix[small_rows].copy()),
            )
            matrix[np.ix_(side_u, side_v)] = self.unreachable
            matrix[np.ix_(side_v, side_u)] = self.unreachable
            self._shift_totals(small_rows, patches[0].old)
            self._graph.remove_edge(u, v)
            self._csr = None
            bridge_delta = self._bridges.note_remove(u, v, self._graph.adj)
            return self._finish(
                patches, (("add", u, v),), csr_before, (bridge_delta,)
            )
        _REMOVE_BFS_REPAIRS.inc()
        if self.n <= _SMALL_N:
            self._graph.remove_edge(u, v)
            self._csr = None
            adj = self._graph.adj
            probes = (
                _bfs_row_py(adj, u, self.n, self.unreachable),
                _bfs_row_py(adj, v, self.n, self.unreachable),
            )
            masked = None
        else:
            masked = self._csr_without(u, v)
            self._graph.remove_edge(u, v)
            self._csr = masked
            probes = _rows_from_csr(masked, [u, v], self.unreachable)
        # a non-bridge removal can only promote edges of this component to
        # bridges; one local sweep re-derives them (post-removal adjacency)
        bridge_delta = self._bridges.note_remove(u, v, self._graph.adj)
        affected = np.flatnonzero(
            (probes[0] != matrix[u]) | (probes[1] != matrix[v])
        )
        _BFS_REPAIR_ROWS.inc(int(affected.size))
        patches = ()
        if affected.size:
            patches = (
                _RowPatch(rows=affected, old=matrix[affected].copy()),
            )
            # u and v are always affected (their mutual distance grew) and
            # their repaired rows are the probes — BFS only the rest
            rest = affected[(affected != u) & (affected != v)]
            if rest.size:
                if (
                    masked is None
                    and rest.size * self.n <= _SMALL_N * _REPAIR_BATCH_FACTOR
                ):
                    # small repair batch: python BFS beats scipy's call
                    # overhead; large batches fall through to one batched
                    # C-level call on a rebuilt CSR
                    adj = self._graph.adj
                    repaired = np.stack(
                        [
                            _bfs_row_py(adj, int(node), self.n, self.unreachable)
                            for node in rest
                        ]
                    )
                else:
                    repaired = _rows_from_csr(
                        self.csr if masked is None else masked,
                        rest,
                        self.unreachable,
                    )
                matrix[rest, :] = repaired
                matrix[:, rest] = repaired.T
            for node, probe in ((u, probes[0]), (v, probes[1])):
                matrix[node, :] = probe
                matrix[:, node] = probe
            self._shift_totals(affected, patches[0].old)
        return self._finish(
            patches, (("add", u, v),), csr_before, (bridge_delta,)
        )

    def apply_swap(self, actor: int, old: int, new: int) -> UndoToken:
        """Replace edge ``actor-old`` by ``actor-new`` (one undo token)."""
        removal = self.apply_remove(actor, old)
        try:
            addition = self.apply_add(actor, new)
        except Exception:
            self.undo(removal)
            raise
        return UndoToken(
            patches=removal.patches + addition.patches,
            inverse_ops=addition.inverse_ops + removal.inverse_ops,
            csr_before=removal.csr_before,
            version_before=removal.version_before,
            version_after=addition.version_after,
            bridge_deltas=removal.bridge_deltas + addition.bridge_deltas,
        )

    def _finish(
        self, patches, inverse_ops, csr_before, bridge_deltas
    ) -> UndoToken:
        token = UndoToken(
            patches=tuple(patches),
            inverse_ops=tuple(inverse_ops),
            csr_before=csr_before,
            version_before=self._version,
            version_after=self._version + 1,
            bridge_deltas=tuple(bridge_deltas),
        )
        self._version += 1
        return token

    def undo(self, token: UndoToken) -> None:
        """Roll back one ``apply_*`` token (strictly LIFO)."""
        if token.version_after != self._version:
            raise RuntimeError(
                "undo tokens must be applied in LIFO order "
                f"(engine at version {self._version}, "
                f"token for {token.version_after})"
            )
        for patch in reversed(token.patches):
            current = self.matrix[patch.rows]  # fancy index: already a copy
            self.matrix[patch.rows, :] = patch.old
            self.matrix[:, patch.rows] = patch.old.T
            self._shift_totals(patch.rows, current)
        for op, u, v in token.inverse_ops:
            if op == "add":
                self._graph.add_edge(u, v)
            else:
                self._graph.remove_edge(u, v)
        for delta in reversed(token.bridge_deltas):
            self._bridges.revert(delta)
        self._csr = token.csr_before
        self._version = token.version_before
