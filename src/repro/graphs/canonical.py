"""Canonical graph keys: iterated degree refinement + ordered minimisation.

The exhaustive "all non-isomorphic graphs" sweeps need a *canonical key*:
a bytes value equal for two graphs **iff** they are isomorphic.  Keys make
isomorphism-pruned enumeration a set-membership test (the layered
enumerator in :mod:`repro.graphs.enumerate`), give content-addressed
identities to campaign witnesses, and — extended to act jointly on a
``(graph, W)`` pair — canonicalise *labelled* weighted instances, where a
demand matrix breaks label symmetry.

The algorithm is classic individualisation–refinement, sized for the
n <= 10 graphs the exact sweeps enumerate:

1. **Iterated degree refinement.**  Vertices start in one colour class;
   each round re-colours a vertex by the sorted multiset of its
   neighbours' colours (for weighted keys: by the sorted profile of
   ``(colour(v), adjacency, W[u, v], W[v, u])`` over *all* other
   vertices, because demands couple non-adjacent pairs too).  Colour
   classes are renumbered in sorted-signature order each round, so the
   resulting ordered partition is isomorphism-invariant.
2. **Minimisation over the residual orderings.**  If refinement leaves
   non-singleton cells, the first such cell is branched on: each member
   is individualised (moved to the front of its cell), refinement
   re-runs, and the recursion bottoms out at discrete partitions, each of
   which is a candidate labelling.  The key is the lexicographic minimum
   of the candidates' serialised forms.  Branching only over the first
   non-singleton cell keeps the candidate set isomorphism-invariant, so
   the minimum is a true canonical form.  *Twin* vertices — members of a
   cell whose transposition is an automorphism — generate identical
   subtrees and are branched once (this collapses cliques, stars and
   complete multipartite cells to a single branch).

Keys are **memoised** per graph content (:func:`canonical_key` — the
sweeps ask for the same family repeatedly); :func:`canonical_cache_info`
exposes hit/miss counters in the spy idiom of the engine modules, and
:func:`key_of_masks` is the cache-free core the layered enumerator feeds
adjacency bitmasks directly.

Key format (``bytes``): ``[n]`` + the upper-triangle adjacency bits of
the canonical labelling packed big-endian; weighted keys append the
canonically permuted demand matrix as ``n**2`` big-endian ``uint64``
words.  :func:`decode_key` inverts both forms exactly.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import networkx as nx
import numpy as np

from repro.obs import metrics as _obs

__all__ = [
    "canonical_cache_clear",
    "canonical_cache_info",
    "canonical_graph",
    "canonical_key",
    "canonical_labelling",
    "decode_key",
    "key_of_masks",
    "masks_of_graph",
]

_MAX_KEY_NODES = 255  # one header byte; the sweeps live at n <= 10

# -- memoisation (spy-counted, like the engine's rebuild counters) -----------

_CACHE: dict = {}
_CACHE_MAX = 1 << 16
_HITS = _obs.counter(
    "repro_canonical_cache_hits_total", "canonical-key memo hits"
)
_MISSES = _obs.counter(
    "repro_canonical_cache_misses_total", "canonical-key memo misses"
)


def canonical_cache_info() -> tuple[int, int, int]:
    """``(hits, misses, size)`` of the canonical-key memo."""
    return _HITS.value, _MISSES.value, len(_CACHE)


def canonical_cache_clear() -> None:
    _CACHE.clear()
    _HITS.reset()
    _MISSES.reset()


# -- adjacency bitmasks ------------------------------------------------------


def masks_of_graph(graph: nx.Graph) -> list[int]:
    """Adjacency rows as int bitmasks; nodes must be ``0..n-1``."""
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ValueError(
            "canonical keys need integer nodes 0..n-1 "
            "(relabel via repro.graphs.distances.canonical_labels)"
        )
    masks = [0] * n
    for u, v in graph.edges:
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return masks


def _weights_tuple(weights) -> tuple[tuple[int, ...], ...]:
    array = np.asarray(weights)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError("a weight matrix must be square")
    return tuple(tuple(int(w) for w in row) for row in array)


# -- refinement --------------------------------------------------------------


def _refine(
    n: int,
    adj: Sequence[int],
    weights: Sequence[Sequence[int]] | None,
    colors: list[int],
) -> list[int]:
    """Iterated degree refinement to a stable, invariantly ordered partition."""
    while True:
        if weights is None:
            sigs = []
            for u in range(n):
                mask = adj[u]
                neigh = []
                while mask:
                    low = mask & -mask
                    neigh.append(colors[low.bit_length() - 1])
                    mask ^= low
                neigh.sort()
                sigs.append((colors[u], tuple(neigh)))
        else:
            sigs = []
            for u in range(n):
                row = weights[u]
                au = adj[u]
                profile = sorted(
                    (colors[v], (au >> v) & 1, row[v], weights[v][u])
                    for v in range(n)
                    if v != u
                )
                sigs.append((colors[u], tuple(profile)))
        ranking = {sig: rank for rank, sig in enumerate(sorted(set(sigs)))}
        refined = [ranking[sig] for sig in sigs]
        if len(ranking) == len(set(colors)):
            # no cell split this round: the partition is stable (one more
            # round would permute labels of the same classes), and the
            # numbering is a deterministic function of invariant input
            return refined
        colors = refined


def _twins(
    n: int,
    adj: Sequence[int],
    weights: Sequence[Sequence[int]] | None,
    v: int,
    w: int,
) -> bool:
    """Is the transposition ``(v w)`` an automorphism of ``(graph, W)``?"""
    clear = ~((1 << v) | (1 << w))
    if (adj[v] & clear) != (adj[w] & clear):
        return False
    if weights is not None:
        if weights[v][w] != weights[w][v]:
            return False
        for x in range(n):
            if x == v or x == w:
                continue
            if weights[v][x] != weights[w][x]:
                return False
            if weights[x][v] != weights[x][w]:
                return False
    return True


# -- the canonical key -------------------------------------------------------


def _leaf_candidate(
    n: int,
    adj: Sequence[int],
    weights: Sequence[Sequence[int]] | None,
    colors: Sequence[int],
):
    """Comparable candidate form of one discrete partition."""
    perm = [0] * n  # position -> original vertex
    for u in range(n):
        perm[colors[u]] = u
    bits = 0
    for i in range(n):
        row = adj[perm[i]]
        for j in range(i + 1, n):
            bits = (bits << 1) | ((row >> perm[j]) & 1)
    if weights is None:
        return (bits,)
    flat = tuple(
        weights[perm[i]][perm[j]] for i in range(n) for j in range(n)
    )
    return (bits, flat)


def key_of_masks(
    n: int,
    adj: Sequence[int],
    weights: Sequence[Sequence[int]] | None = None,
) -> bytes:
    """Canonical key from adjacency bitmasks (the enumerator's fast path).

    ``weights``, when given, must be an ``n x n`` nested sequence of
    non-negative ints — the key then canonicalises the *joint*
    ``(graph, W)`` structure.
    """
    best, _ = _minimise(n, adj, weights)
    return _serialise(n, best, weights is not None)


def _minimise(
    n: int,
    adj: Sequence[int],
    weights: Sequence[Sequence[int]] | None,
) -> tuple[tuple, list[int]]:
    """The lexicographically minimal candidate and its discrete colouring.

    Shared core of :func:`key_of_masks` and :func:`canonical_labelling`:
    returns ``(candidate, colors)`` where ``colors[u]`` is vertex ``u``'s
    canonical position in the winning labelling.
    """
    if not 0 < n <= _MAX_KEY_NODES:
        raise ValueError(f"canonical keys support 1..{_MAX_KEY_NODES} nodes")
    best = None
    best_colors: list[int] = []
    colors0 = _refine(n, adj, weights, [0] * n)
    stack = [colors0]
    while stack:
        colors = stack.pop()
        counts = [0] * n
        for color in colors:
            counts[color] += 1
        target = -1
        for color in range(n):
            if counts[color] > 1:
                target = color
                break
        if target < 0:
            candidate = _leaf_candidate(n, adj, weights, colors)
            if best is None or candidate < best:
                best = candidate
                best_colors = list(colors)
            continue
        cell = [u for u in range(n) if colors[u] == target]
        tried: list[int] = []
        for v in cell:
            if any(_twins(n, adj, weights, v, w) for w in tried):
                continue
            tried.append(v)
            branched = [
                color + 1 if (u != v and color >= target) else color
                for u, color in enumerate(colors)
            ]
            branched[v] = target
            stack.append(_refine(n, adj, weights, branched))
    return best, best_colors


def _serialise(n: int, candidate, weighted: bool) -> bytes:
    bit_bytes = (n * (n - 1) // 2 + 7) // 8
    key = bytes([n]) + candidate[0].to_bytes(bit_bytes, "big")
    if weighted:
        key += b"".join(w.to_bytes(8, "big") for w in candidate[1])
    return key


def canonical_key(graph: nx.Graph, traffic=None) -> bytes:
    """Memoised canonical key of ``graph`` (jointly with ``traffic``).

    ``traffic`` may be a :class:`repro.core.traffic.TrafficMatrix`, a raw
    square matrix, or ``None`` for the purely structural key.  Two calls
    return equal keys **iff** the (graph, demands) structures are
    isomorphic under a common relabelling.
    """
    n = graph.number_of_nodes()
    adj = masks_of_graph(graph)
    weights = None
    if traffic is not None:
        weights = _weights_tuple(getattr(traffic, "weights", traffic))
        if len(weights) != n:
            raise ValueError(
                f"demand matrix is {len(weights)}x{len(weights)}, "
                f"graph has {n} nodes"
            )
    memo = (n, tuple(adj), weights)
    cached = _CACHE.get(memo)
    if cached is not None:
        _HITS.inc()
        return cached
    _MISSES.inc()
    key = key_of_masks(n, adj, weights)
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.clear()
    _CACHE[memo] = key
    return key


def canonical_graph(graph: nx.Graph, traffic=None) -> nx.Graph:
    """The canonical representative of ``graph``'s isomorphism class.

    Decoded straight from :func:`canonical_key`, so two isomorphic inputs
    return *identical* labelled graphs (and with ``traffic``, two jointly
    isomorphic inputs return the identical labelled pair).
    """
    decoded, _ = decode_key(canonical_key(graph, traffic))
    return decoded


def canonical_labelling(graph: nx.Graph, traffic=None) -> tuple[int, ...]:
    """The relabelling onto the canonical representative.

    Returns ``sigma`` with ``sigma[u]`` = vertex ``u``'s label in
    :func:`canonical_graph`; relabelling ``graph`` by ``sigma`` (and
    permuting a demand matrix as ``W'[sigma[u], sigma[v]] = W[u, v]``)
    reproduces the canonical representative *identically*.  This is what
    lets a cache keyed by :func:`canonical_key` serve label-dependent
    queries ("agent ``u``'s best move") for any representative of the
    class: map the query through ``sigma``, answer on the canonical
    instance, and map the answer back through ``sigma``'s inverse.
    """
    n = graph.number_of_nodes()
    adj = masks_of_graph(graph)
    weights = None
    if traffic is not None:
        weights = _weights_tuple(getattr(traffic, "weights", traffic))
        if len(weights) != n:
            raise ValueError(
                f"demand matrix is {len(weights)}x{len(weights)}, "
                f"graph has {n} nodes"
            )
    _, colors = _minimise(n, adj, weights)
    return tuple(colors)


def decode_key(key: bytes) -> tuple[nx.Graph, np.ndarray | None]:
    """Invert a canonical key into ``(graph, weights-or-None)``."""
    n = key[0]
    bit_bytes = (n * (n - 1) // 2 + 7) // 8
    bits = int.from_bytes(key[1 : 1 + bit_bytes], "big")
    graph = nx.empty_graph(n)
    position = n * (n - 1) // 2
    for i in range(n):
        for j in range(i + 1, n):
            position -= 1
            if (bits >> position) & 1:
                graph.add_edge(i, j)
    rest = key[1 + bit_bytes :]
    if not rest:
        return graph, None
    if len(rest) != 8 * n * n:
        raise ValueError("malformed weighted canonical key")
    flat = [
        int.from_bytes(rest[8 * k : 8 * k + 8], "big")
        for k in range(n * n)
    ]
    weights = np.array(flat, dtype=np.int64).reshape(n, n)
    return graph, weights


def _edges_of_key(key: bytes) -> Iterator[tuple[int, int]]:
    """Edge iterator of a structural key without building an nx.Graph."""
    n = key[0]
    bit_bytes = (n * (n - 1) // 2 + 7) // 8
    bits = int.from_bytes(key[1 : 1 + bit_bytes], "big")
    position = n * (n - 1) // 2
    for i in range(n):
        for j in range(i + 1, n):
            position -= 1
            if (bits >> position) & 1:
                yield i, j
