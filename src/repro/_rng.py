"""Seedable randomness plumbing for the probe-based refuters.

Every randomized entry point (``probe_neighborhood_moves``,
``probe_coalition_moves``, ``diagnose``, the BSE move generator, the
examples) accepts either a ready ``random.Random``, an integer seed, or
``None``; :func:`coerce_rng` normalises all three so probe verdicts are
reproducible end-to-end from a single seed.

The campaign subsystem adds a second requirement: a sweep sharded over a
``multiprocessing`` pool must produce *bit-identical* results at any
worker count, so per-trial seeds must be pure functions of the trial's
identity — never ambient state, worker id or execution order.  Two
derivations serve that: :func:`trial_seed` is the historical
``convergence_study`` formula (used by the ``dynamics`` runner so
campaign trials reproduce the in-process ensemble bit-for-bit), and
:func:`derive_seed` / :func:`spawn_rng` hash a base seed plus an
arbitrary identity (strings, ints, Fractions — anything with a stable
``repr``) into a stable 64-bit seed, for runner kinds whose streams
must differ across more axes than a seed index.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["RngLike", "coerce_rng", "derive_seed", "spawn_rng", "trial_seed"]

#: A ``random.Random``, an integer seed, or ``None`` (default seed 0).
RngLike = Union[random.Random, int, None]

DEFAULT_SEED = 0


def coerce_rng(rng: RngLike, default_seed: int = DEFAULT_SEED) -> random.Random:
    """Normalise an rng-or-seed argument to a ``random.Random``.

    ``None`` yields a generator seeded with ``default_seed`` so unseeded
    calls are still deterministic and reproducible.
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random(default_seed)
    if isinstance(rng, bool):
        raise TypeError("rng must be a random.Random, an int seed, or None")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        f"cannot interpret {rng!r} as a random.Random or integer seed"
    )


def derive_seed(base_seed: int, *components) -> int:
    """A stable 64-bit seed for one unit of work inside a seeded sweep.

    Hashes ``(base_seed, *components)`` through BLAKE2b so that distinct
    trials get statistically independent streams while the mapping stays
    a pure function of the trial's identity — no ambient state, so a
    sharded executor reproduces the serial run bit-for-bit at any worker
    count.  Components must have a stable ``repr`` (ints, strings,
    ``Fraction``, tuples thereof).
    """
    payload = repr((base_seed,) + components).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def spawn_rng(base_seed: int, *components) -> random.Random:
    """``coerce_rng(derive_seed(base_seed, *components))`` in one call."""
    return coerce_rng(derive_seed(base_seed, *components))


def trial_seed(base_seed: int, index: int) -> int:
    """The per-run seed of a seeded ensemble (``base * 100_003 + index``).

    This is the historical :func:`repro.dynamics.convergence\
.convergence_study` formula, kept as the shared definition so the
    campaign subsystem's per-trial dynamics runs reproduce the in-process
    ensemble bit-for-bit.
    """
    return base_seed * 100_003 + index
