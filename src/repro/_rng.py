"""Seedable randomness plumbing for the probe-based refuters.

Every randomized entry point (``probe_neighborhood_moves``,
``probe_coalition_moves``, ``diagnose``, the BSE move generator, the
examples) accepts either a ready ``random.Random``, an integer seed, or
``None``; :func:`coerce_rng` normalises all three so probe verdicts are
reproducible end-to-end from a single seed.
"""

from __future__ import annotations

import random
from typing import Union

__all__ = ["RngLike", "coerce_rng"]

#: A ``random.Random``, an integer seed, or ``None`` (default seed 0).
RngLike = Union[random.Random, int, None]

DEFAULT_SEED = 0


def coerce_rng(rng: RngLike, default_seed: int = DEFAULT_SEED) -> random.Random:
    """Normalise an rng-or-seed argument to a ``random.Random``.

    ``None`` yields a generator seeded with ``default_seed`` so unseeded
    calls are still deterministic and reproducible.
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random(default_seed)
    if isinstance(rng, bool):
        raise TypeError("rng must be a random.Random, an int seed, or None")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        f"cannot interpret {rng!r} as a random.Random or integer seed"
    )
