"""Composite concepts: Pairwise Stability and Bilateral Greedy Equilibrium.

* **PS** = RE ∩ BAE (Jackson–Wolinsky stability, the concept Corbo and
  Parkes analysed);
* **BGE** = PS ∩ BSwE (the bilateral version of Lenzner's Greedy
  Equilibrium).

Both are intersections of exact polynomial checkers, hence exact.  The
component finders all evaluate candidates through the speculative kernel
(engine queries and undo-token speculation), so a composite verdict here
and a single-concept verdict elsewhere can never disagree.
"""

from __future__ import annotations

from repro.core.moves import Move
from repro.core.state import GameState
from repro.equilibria.add import find_improving_bilateral_add
from repro.equilibria.remove import find_improving_removal
from repro.equilibria.swap import find_improving_swap

__all__ = [
    "find_pairwise_violation",
    "find_greedy_violation",
    "is_bilateral_greedy_equilibrium",
    "is_pairwise_stable",
]


def find_pairwise_violation(state: GameState) -> Move | None:
    """An improving removal or mutual addition, or ``None`` (exact PS)."""
    removal = find_improving_removal(state)
    if removal is not None:
        return removal
    return find_improving_bilateral_add(state)


def is_pairwise_stable(state: GameState) -> bool:
    """Exact Pairwise Stability check."""
    return find_pairwise_violation(state) is None


def find_greedy_violation(state: GameState) -> Move | None:
    """An improving removal, addition or swap, or ``None`` (exact BGE)."""
    pairwise = find_pairwise_violation(state)
    if pairwise is not None:
        return pairwise
    return find_improving_swap(state)


def is_bilateral_greedy_equilibrium(state: GameState) -> bool:
    """Exact BGE check."""
    return find_greedy_violation(state) is None
