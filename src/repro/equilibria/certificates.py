"""Violation certificates and their independent re-validation.

A checker never just says "unstable": it returns the concrete improving move.
:func:`validate_certificate` re-derives every beneficiary's cost before and
after the move from scratch (fresh BFS, exact Fractions) so a bug in a
checker's fast path cannot silently fabricate an instability.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.costs import agent_cost_after
from repro.core.moves import Move
from repro.core.state import GameState

__all__ = ["StabilityReport", "validate_certificate"]


@dataclass(frozen=True)
class StabilityReport:
    """Outcome of an equilibrium check.

    ``stable`` is ``True`` when no improving move was found *within the
    documented search scope* of the checker; ``certificate`` carries the
    violating move otherwise.  ``exhaustive`` records whether the scope
    covered the full move space of the concept (polynomial checkers always
    do; guarded exponential ones may not).
    """

    stable: bool
    certificate: Move | None = None
    exhaustive: bool = True
    note: str = ""

    def __bool__(self) -> bool:
        return self.stable


def validate_certificate(state: GameState, move: Move) -> bool:
    """Re-check from scratch that ``move`` strictly improves each beneficiary.

    Costs are recomputed with fresh BFS runs on the mutated graph and the
    original graph; all comparisons are exact.
    """
    graph_after = move.apply(state.graph)
    for agent in move.beneficiaries():
        before: Fraction = state.cost(agent)
        after: Fraction = agent_cost_after(state, graph_after, agent)
        if not after < before:
            return False
    return True
