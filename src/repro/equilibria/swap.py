"""Bilateral Swap Equilibrium (BSwE): stability against cooperative swaps.

A swap takes ``uv in E`` and ``uw not in E``: agent ``u`` replaces her edge
to ``v`` by an edge to ``w``; ``w`` consents and starts paying.  The move is
improving iff ``u``'s distance cost strictly drops (her buying cost is
unchanged) and ``w``'s distance gain strictly exceeds ``alpha``.

Two exact strategies:

* **trees** — removing ``uv`` splits the node set; all post-swap distances
  are closed-form in the original APSP matrix and the split masks, giving an
  ``O(n^2)`` vectorised evaluation per edge (``O(n^3)`` total, no BFS);
* **general graphs** — one APSP recomputation of ``G - uv`` per edge, then
  the one-edge-add identity for every candidate ``w`` (``O(m * n * m)``).
"""

from __future__ import annotations

import numpy as np

from repro._alpha import strict_gt_threshold
from repro.core.moves import Swap
from repro.core.state import GameState
from repro.graphs.distances import apsp_matrix
from repro.graphs.trees import tree_split_masks

__all__ = [
    "find_improving_swap",
    "is_bilateral_swap_equilibrium",
    "swap_gains",
]


def swap_gains(state: GameState, actor: int, old: int, new: int) -> tuple[int, int]:
    """Exact distance gains ``(gain_actor, gain_new)`` of one specific swap.

    Reference implementation (two BFS runs on the mutated graph); the
    vectorised searches below must agree with it.
    """
    from repro.graphs.distances import single_source_distances

    graph = state.graph.copy()
    graph.remove_edge(actor, old)
    graph.add_edge(actor, new)
    unreachable = state.m_constant
    actor_after = int(single_source_distances(graph, actor, unreachable).sum())
    new_after = int(single_source_distances(graph, new, unreachable).sum())
    return (
        state.dist.total(actor) - actor_after,
        state.dist.total(new) - new_after,
    )


def _find_swap_tree(state: GameState) -> Swap | None:
    dist = state.dist_matrix
    totals = dist.sum(axis=1)
    w_threshold = strict_gt_threshold(state.alpha)
    n = state.n
    for a, b in state.graph.edges:
        mask_a, mask_b = tree_split_masks(state.graph, a, b, n)
        # column sums of the APSP matrix restricted to each side, per node
        sums_b = dist @ mask_b.astype(np.int64)
        sums_a = totals - sums_b
        size_a = int(mask_a.sum())
        size_b = n - size_a
        for actor, old, far_mask, far_sums, far_size, near_sums, near_size in (
            (a, b, mask_b, sums_b, size_b, sums_a, size_a),
            (b, a, mask_a, sums_a, size_a, sums_b, size_b),
        ):
            # actor keeps its side, reattaches to w on the far side:
            #   gain_actor(w) = sum_{x far} d(actor,x) - (|far| + sum_{x far} d(w,x))
            #   gain_w(w)     = sum_{x near} d(w,x) - (|near| + sum_{x near} d(actor,x))
            gain_actor = int(far_sums[actor]) - far_size - far_sums
            gain_w = near_sums - near_size - int(near_sums[actor])
            viable = (gain_actor >= 1) & (gain_w >= w_threshold) & far_mask
            viable[old] = False
            candidates = np.flatnonzero(viable)
            if candidates.size:
                return Swap(actor=actor, old=old, new=int(candidates[0]))
    return None


def _find_swap_general(state: GameState) -> Swap | None:
    dist = state.dist_matrix
    totals = dist.sum(axis=1)
    w_threshold = strict_gt_threshold(state.alpha)
    n = state.n
    graph = state.graph
    adjacency = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges:
        adjacency[u, v] = True
        adjacency[v, u] = True
    for a, b in list(graph.edges):
        graph.remove_edge(a, b)
        removed = apsp_matrix(graph, state.m_constant)
        graph.add_edge(a, b)
        for actor, old in ((a, b), (b, a)):
            # actor's new distances with partner w:  min(rm[actor], 1 + rm[w])
            actor_rows = np.minimum(removed[actor][None, :], 1 + removed)
            actor_new_totals = actor_rows.sum(axis=1)
            gain_actor = int(totals[actor]) - actor_new_totals
            # partner w's new distances:             min(rm[w], 1 + rm[actor])
            partner_rows = np.minimum(removed, (1 + removed[actor])[None, :])
            partner_new_totals = partner_rows.sum(axis=1)
            gain_w = totals - partner_new_totals
            viable = (gain_actor >= 1) & (gain_w >= w_threshold)
            viable[actor] = False
            viable[old] = False
            viable &= ~adjacency[actor]
            candidates = np.flatnonzero(viable)
            if candidates.size:
                return Swap(actor=actor, old=old, new=int(candidates[0]))
    return None


def find_improving_swap(state: GameState) -> Swap | None:
    """First mutually improving swap, or ``None`` (exact)."""
    if state.n < 3 or state.graph.number_of_edges() == 0:
        return None
    if state.is_tree():
        return _find_swap_tree(state)
    return _find_swap_general(state)


def is_bilateral_swap_equilibrium(state: GameState) -> bool:
    """Exact BSwE check."""
    return find_improving_swap(state) is None
