"""Bilateral Swap Equilibrium (BSwE): stability against cooperative swaps.

A swap takes ``uv in E`` and ``uw not in E``: agent ``u`` replaces her edge
to ``v`` by an edge to ``w``; ``w`` consents and starts paying.  The move is
improving iff ``u``'s distance cost strictly drops (her buying cost is
unchanged) and ``w``'s distance gain strictly exceeds ``alpha``.

Two exact strategies:

* **trees** — removing ``uv`` splits the node set; all post-swap distances
  are closed-form in the original APSP matrix and the split masks, giving an
  ``O(n^2)`` vectorised evaluation per edge (``O(n^3)`` total, no BFS);
* **general graphs** — bridge edges split the cached matrix in closed form
  (no mutation, no search); other edges are speculatively removed on the
  state's cached :class:`~repro.graphs.distances.DistanceMatrix`
  (affected-rows BFS repair, undone via the token afterwards); then the
  one-edge-add identity evaluates every candidate ``w`` — no full APSP
  rebuilds anywhere.
"""

from __future__ import annotations

import numpy as np

from repro._alpha import strict_gt_threshold
from repro.core.moves import Swap
from repro.core.state import GameState
from repro.graphs.distances import adjacency_bool
from repro.graphs.trees import tree_split_masks

__all__ = [
    "find_improving_swap",
    "is_bilateral_swap_equilibrium",
    "swap_gains",
    "viable_swap_partners",
]


def viable_swap_partners(
    removed: np.ndarray,
    totals: np.ndarray,
    adjacency: np.ndarray,
    threshold: int,
    actor: int,
    old: int,
    weights: np.ndarray | None = None,
    valuer=None,
) -> np.ndarray:
    """Partners ``w`` for which swap ``(actor, old -> w)`` is improving.

    ``removed`` is the exact APSP matrix of ``G - {actor, old}``; gains come
    from the one-edge-add identity.  Shared by the BSwE checker and the swap
    move generator so the two can never disagree.  Ascending node order.

    With a demand matrix ``weights``, ``totals`` must be the *weighted*
    base totals and both gain vectors weight each candidate row by the
    owner's demand row — the same ``O(n^2)`` evaluation, one extra
    elementwise product.  With a ``valuer``
    (:class:`~repro.core.costmodel.ModelOps`), ``totals`` must be the
    model aggregates and gains are model-value drops of the hypothetical
    rows — the candidate rows themselves stay raw distances.
    """
    # actor's new distances with partner w:  min(rm[actor], 1 + rm[w])
    actor_rows = np.minimum(removed[actor][None, :], 1 + removed)
    # partner w's new distances:             min(rm[w], 1 + rm[actor])
    partner_rows = np.minimum(removed, (1 + removed[actor])[None, :])
    if valuer is not None:
        gain_actor = int(totals[actor]) - valuer.rows_value(actor, actor_rows)
        gain_w = totals - valuer.rows_value_per_owner(partner_rows)
    elif weights is None:
        gain_actor = int(totals[actor]) - actor_rows.sum(axis=1)
        gain_w = totals - partner_rows.sum(axis=1)
    else:
        gain_actor = int(totals[actor]) - actor_rows @ weights[actor]
        gain_w = totals - (partner_rows * weights).sum(axis=1)
    viable = (gain_actor >= 1) & (gain_w >= threshold)
    viable[actor] = False
    viable[old] = False
    viable &= ~adjacency[actor]
    return np.flatnonzero(viable)


def swap_gains(state: GameState, actor: int, old: int, new: int) -> tuple[int, int]:
    """Exact distance gains ``(gain_actor, gain_new)`` of one specific swap.

    Evaluated on the speculative kernel (apply the swap to the cached
    engine, read both agents' total deltas, undo) — the same code path the
    vectorised searches below speculate on, so the two can never disagree.
    Tests re-derive these gains with fresh BFS runs on a mutated copy.
    """
    from repro.core.speculative import SpeculativeEvaluator

    spec = SpeculativeEvaluator(state)
    with spec.speculate(Swap(actor=actor, old=old, new=new)):
        return (-spec.dist_delta(actor), -spec.dist_delta(new))


def _find_swap_tree(state: GameState) -> Swap | None:
    dist = state.dist_matrix
    totals = dist.sum(axis=1)
    w_threshold = strict_gt_threshold(state.alpha)
    n = state.n
    for a, b in state.graph.edges:
        mask_a, mask_b = tree_split_masks(state.graph, a, b, n)
        # column sums of the APSP matrix restricted to each side, per node
        sums_b = dist @ mask_b.astype(np.int64)
        sums_a = totals - sums_b
        size_a = int(mask_a.sum())
        size_b = n - size_a
        for actor, old, far_mask, far_sums, far_size, near_sums, near_size in (
            (a, b, mask_b, sums_b, size_b, sums_a, size_a),
            (b, a, mask_a, sums_a, size_a, sums_b, size_b),
        ):
            # actor keeps its side, reattaches to w on the far side:
            #   gain_actor(w) = sum_{x far} d(actor,x) - (|far| + sum_{x far} d(w,x))
            #   gain_w(w)     = sum_{x near} d(w,x) - (|near| + sum_{x near} d(actor,x))
            gain_actor = int(far_sums[actor]) - far_size - far_sums
            gain_w = near_sums - near_size - int(near_sums[actor])
            viable = (gain_actor >= 1) & (gain_w >= w_threshold) & far_mask
            viable[old] = False
            candidates = np.flatnonzero(viable)
            if candidates.size:
                return Swap(actor=actor, old=old, new=int(candidates[0]))
    return None


def _find_swap_general(state: GameState) -> Swap | None:
    dm = state.dist
    valuer = state.model_ops if state.modeled else None
    weights = (
        state.traffic.weights if state.weighted and valuer is None else None
    )
    if valuer is not None:
        totals = dm.ftotals()
    elif state.weighted:
        totals = dm.wtotals()
    else:
        totals = dm.totals()
    w_threshold = strict_gt_threshold(state.alpha)
    graph = state.graph
    adjacency = adjacency_bool(graph)
    for a, b in list(graph.edges):
        if dm.is_bridge(a, b):
            # mutation-free: the post-removal matrix of a bridge is a
            # two-component split of the cached one (no search)
            removed = dm.matrix_after_bridge_removal(a, b)
            token = None
        else:
            # speculative in-place removal on the cached engine, undone below
            token = dm.apply_remove(a, b)
            removed = dm.matrix
        try:
            for actor, old in ((a, b), (b, a)):
                candidates = viable_swap_partners(
                    removed, totals, adjacency, w_threshold, actor, old,
                    weights=weights, valuer=valuer,
                )
                if candidates.size:
                    return Swap(actor=actor, old=old, new=int(candidates[0]))
        finally:
            if token is not None:
                dm.undo(token)
    return None


def find_improving_swap(state: GameState) -> Swap | None:
    """First mutually improving swap, or ``None`` (exact).

    Weighted and modeled states always take the general engine-backed
    path: the closed-form tree evaluation vectorises over *uniform
    linear* side sums, and on trees every edge is a bridge anyway, so
    the general path stays mutation-free there.
    """
    if state.n < 3 or state.graph.number_of_edges() == 0:
        return None
    if state.is_tree() and not state.weighted and not state.modeled:
        return _find_swap_tree(state)
    return _find_swap_general(state)


def is_bilateral_swap_equilibrium(state: GameState) -> bool:
    """Exact BSwE check."""
    return find_improving_swap(state) is None
