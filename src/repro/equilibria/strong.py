"""Bilateral (k-)Strong Equilibria: stability against coalition moves.

A coalition ``Gamma`` (``|Gamma| <= k``) may delete any set of edges with at
least one endpoint inside ``Gamma`` and add any set of edges with *both*
endpoints inside; the move is improving iff **every** member strictly
benefits.  BSE is the special case ``k = n``.

Member costs after a move use clean post-move strategies: a member saves
``alpha`` for each incident deleted edge and pays ``alpha`` for each incident
added edge, i.e. ``cost(u) = alpha * deg'(u) + dist'(u)`` in the mutated
graph (Section 1.1's strategy/graph bijection).

Exhaustive checking is doubly exponential-ish (coalitions x edge subsets).
The exact checker enumerates edge subsets with an explicit evaluation
budget and evaluates every candidate on the
:class:`~repro.core.speculative.SpeculativeEvaluator` kernel: each deleted
subset is applied to the cached distance engine once and amortised (via
nested LIFO undo scopes) across every addition subset tried on top of it,
and member verdicts are exact degree/total-delta comparisons — the old
per-candidate adjacency-set rebuild and Python BFS per member are gone.
When the instance is out of budget the checker raises
:class:`SearchBudgetExceeded` — callers then combine scaled-down exact
checks, the paper's case analyses, and :func:`probe_coalition_moves`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro._rng import RngLike, coerce_rng
from repro.core.moves import CoalitionMove, normalize_edge
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.equilibria.neighborhood import SearchBudgetExceeded
from repro.obs import metrics as _obs

__all__ = [
    "dfs_path_counts",
    "find_improving_coalition_move",
    "is_k_strong_equilibrium",
    "is_strong_equilibrium",
    "probe_coalition_moves",
]

#: Coalition DFS dispatch spies: how many coalition subspaces ran the
#: fully query-based fold DFS vs the token-based engine DFS since import.
#: Tests assert the forest gate is never the reason a fold split is
#: refused — any coalition whose removable edges are all bridges takes
#: the fold path, cyclic host graph or not.
_FOLD_DFS_RUNS = _obs.counter(
    "repro_strong_fold_dfs_runs_total",
    "coalition subspaces searched by the query-based fold DFS",
)
_ENGINE_DFS_RUNS = _obs.counter(
    "repro_strong_engine_dfs_runs_total",
    "coalition subspaces searched by the token-based engine DFS",
)

_SPY_ALIASES = {
    "FOLD_DFS_RUNS": _FOLD_DFS_RUNS,
    "ENGINE_DFS_RUNS": _ENGINE_DFS_RUNS,
}


def __getattr__(name: str) -> int:
    counter = _SPY_ALIASES.get(name)
    if counter is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return counter.value


def dfs_path_counts() -> tuple[int, int]:
    """``(fold_runs, engine_runs)`` of the coalition DFS since import."""
    return _FOLD_DFS_RUNS.value, _ENGINE_DFS_RUNS.value


def _coalition_edge_space(
    state: GameState, coalition: tuple[int, ...]
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    members = set(coalition)
    removable = sorted(
        normalize_edge(u, v)
        for u, v in state.graph.edges
        if u in members or v in members
    )
    addable = sorted(
        normalize_edge(u, v)
        for u, v in itertools.combinations(sorted(members), 2)
        if not state.graph.has_edge(u, v)
    )
    return removable, addable


def find_improving_coalition_move(
    state: GameState,
    max_coalition_size: int,
    coalitions: Iterable[tuple[int, ...]] | None = None,
    max_evaluations: int = 5_000_000,
) -> CoalitionMove | None:
    """Exhaustive search for an improving coalition move of size at most
    ``max_coalition_size`` (raises :class:`SearchBudgetExceeded` over budget).

    Candidates are evaluated on the speculative kernel: each removal
    subset is applied once and shared across its addition subsets, then
    rolled back through LIFO undo tokens.
    """
    if coalitions is None:
        nodes = range(state.n)
        coalitions = itertools.chain.from_iterable(
            itertools.combinations(nodes, size)
            for size in range(1, min(max_coalition_size, state.n) + 1)
        )
    spec = SpeculativeEvaluator(state)
    budget = max_evaluations
    for coalition in coalitions:
        removable, addable = _coalition_edge_space(state, coalition)
        space = 2 ** (len(removable) + len(addable))
        budget -= space
        if budget < 0:
            raise SearchBudgetExceeded(
                f"coalition {coalition}: 2^{len(removable) + len(addable)} "
                f"move candidates exceed the evaluation budget"
            )
        members = tuple(coalition)
        move = _dfs_coalition_space(spec, members, removable, addable)
        if move is not None:
            return move
    return None


def _dfs_coalition_space(
    spec: SpeculativeEvaluator,
    members: tuple[int, ...],
    removable: Sequence[tuple[int, int]],
    addable: Sequence[tuple[int, int]],
) -> CoalitionMove | None:
    """DFS over all nonempty (removed, added) subsets on the kernel.

    Removal subsets walk the engine with push/pop tokens — siblings share
    their common prefix, so each removal node costs one apply + one undo.
    On top of each removal prefix the whole addition powerset evaluates
    through a rows-only :class:`~repro.core.speculative.Fold` (added
    edges live inside the coalition, so the members' rows close over the
    fold) — no matrix mutation at all per addition candidate.

    Two *sound* prunes cut subtrees without affecting exactness:

    * remaining removals can lower member ``m``'s buying delta by at most
      her incident count among them, and distances never drop below
      ``n - 1`` (never below the current value once only removals
      remain — removals are distance-monotone), so a member with
      ``alpha * (buy_delta - future_incident_removals) >= bound`` dooms
      every descendant;
    * inside the addition suffix buying deltas only grow, so an endpoint
      that cannot recover one more edge price
      (``alpha * (buy_delta + 1) >= base_dist - (n - 1)``) dooms every
      candidate containing that edge.
    """
    # per-member distance floor: n - 1 uniform, demand mass weighted
    slack = {m: spec.base_dist(m) - spec.dist_floor(m) for m in members}
    # future_incident[m][i] = removable edges at index >= i incident to m
    future_incident = {}
    for m in members:
        counts = [0] * (len(removable) + 1)
        for i in range(len(removable) - 1, -1, -1):
            u, v = removable[i]
            counts[i] = counts[i + 1] + (1 if m in (u, v) else 0)
        future_incident[m] = counts
    removed: list[tuple[int, int]] = []
    added: list[tuple[int, int]] = []
    touched = set(members)
    for u, v in removable:
        touched.update((u, v))
    net_degree = {node: 0 for node in touched}

    def candidate_improves(fold) -> bool:
        for m in members:
            gain = spec.base_dist(m) - fold.dist_total(m)
            delta = spec.buy_delta(m) + net_degree[m]
            if delta == 0:
                if not gain > 0:
                    return False
            elif not spec.alpha_lt(delta, gain):
                return False
        return True

    def found_move() -> CoalitionMove:
        return CoalitionMove(
            coalition=members,
            removed_edges=tuple(removed),
            added_edges=tuple(added),
        )

    def descend_adds(fold, start: int) -> CoalitionMove | None:
        for index in range(start, len(addable)):
            u, v = addable[index]
            if not spec.alpha_lt(
                spec.buy_delta(u) + net_degree[u] + 1, slack[u]
            ) or not spec.alpha_lt(
                spec.buy_delta(v) + net_degree[v] + 1, slack[v]
            ):
                continue  # this edge's price can never be recovered
            child = fold.extend(u, v)
            added.append((u, v))
            net_degree[u] += 1
            net_degree[v] += 1
            try:
                spec.note_evaluation()
                if candidate_improves(child):
                    return found_move()
                found = descend_adds(child, index + 1)
                if found is not None:
                    return found
            finally:
                net_degree[u] -= 1
                net_degree[v] -= 1
                added.pop()
        return None

    def removal_prunable(next_start: int, fold=None) -> bool:
        for m in members:
            count = (
                spec.buy_delta(m)
                + net_degree[m]
                - future_incident[m][next_start]
            )
            if addable:
                # distances can still recover, but never below the floor
                bound = slack[m]
            else:
                # pure-removal subtree: distances are monotone from here
                # (weights are non-negative, so weighted totals are too)
                dist_now = (
                    fold.dist_total(m)
                    if fold is not None
                    else spec.current_dist(m)
                )
                bound = spec.base_dist(m) - dist_now
            if not spec.alpha_lt(count, bound):
                return True
        return False

    def descend_removes_fold(fold, start: int) -> CoalitionMove | None:
        """Fully query-based DFS (forest instances): removals split the
        fold, additions extend it — zero engine mutations."""
        if addable:
            # addable endpoints are members: drop the extra tracked rows
            found = descend_adds(fold.restrict(members), 0)
            if found is not None:
                return found
        for index in range(start, len(removable)):
            u, v = removable[index]
            child = fold.split(u, v)
            removed.append((u, v))
            net_degree[u] -= 1
            net_degree[v] -= 1
            try:
                spec.note_evaluation()
                if candidate_improves(child):
                    return found_move()
                if not removal_prunable(index + 1, child):
                    found = descend_removes_fold(child, index + 1)
                    if found is not None:
                        return found
            finally:
                net_degree[u] += 1
                net_degree[v] += 1
                removed.pop()
        return None

    def descend_removes_engine(start: int) -> CoalitionMove | None:
        """Token-based DFS (general instances): removals walk the engine
        with push/pop, additions still fold on top of each prefix."""
        if addable:
            found = descend_adds(spec.fold(members), 0)
            if found is not None:
                return found
        for index in range(start, len(removable)):
            u, v = removable[index]
            spec.push("remove", u, v)
            removed.append((u, v))
            try:
                spec.note_evaluation()
                if spec.all_improve(members):
                    return found_move()
                if not removal_prunable(index + 1):
                    found = descend_removes_engine(index + 1)
                    if found is not None:
                        return found
            finally:
                removed.pop()
                spec.pop()
        return None

    # The fold DFS needs every removable edge to be splittable, i.e. a
    # bridge.  On forests that is automatic; on general graphs it still
    # holds whenever this coalition's removable edges happen to be
    # bridges of the host graph (bridges stay bridges under deletion,
    # splits touch only removable edges, and additions extend restricted
    # fold copies without feeding back into the removal fold).  Gate on
    # the edges themselves, not on the global forest property.
    if spec.engine.is_forest or all(
        spec.is_bridge(u, v) for u, v in removable
    ):
        _FOLD_DFS_RUNS.inc()
        return descend_removes_fold(spec.fold(sorted(touched)), 0)
    _ENGINE_DFS_RUNS.inc()
    return descend_removes_engine(0)


def is_k_strong_equilibrium(
    state: GameState,
    k: int,
    max_evaluations: int = 5_000_000,
) -> bool:
    """Exact k-BSE check (may raise :class:`SearchBudgetExceeded`)."""
    return (
        find_improving_coalition_move(state, k, max_evaluations=max_evaluations)
        is None
    )


def is_strong_equilibrium(
    state: GameState, max_evaluations: int = 5_000_000
) -> bool:
    """Exact BSE (= n-BSE) check (may raise :class:`SearchBudgetExceeded`)."""
    return is_k_strong_equilibrium(state, state.n, max_evaluations=max_evaluations)


def probe_coalition_moves(
    state: GameState,
    rng: RngLike,
    max_coalition_size: int,
    samples: int = 1000,
) -> CoalitionMove | None:
    """Randomized refuter: samples coalitions and random legal moves.

    A returned move is a certified violation; ``None`` proves nothing.
    ``rng`` may be a ``random.Random``, an integer seed, or ``None``
    (seed 0), so probe verdicts are reproducible end-to-end.  Sampled
    candidates are evaluated on the speculative kernel.
    """
    rng = coerce_rng(rng)
    nodes = list(range(state.n))
    spec = SpeculativeEvaluator(state)
    for _ in range(samples):
        size = rng.randint(1, min(max_coalition_size, state.n))
        coalition = tuple(sorted(rng.sample(nodes, size)))
        removable, addable = _coalition_edge_space(state, coalition)
        removed = tuple(e for e in removable if rng.random() < 0.3)
        added = tuple(e for e in addable if rng.random() < 0.5)
        if not removed and not added:
            continue
        move = CoalitionMove(
            coalition=coalition, removed_edges=removed, added_edges=added
        )
        if spec.move_improves(move):
            return move
    return None
