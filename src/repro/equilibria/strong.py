"""Bilateral (k-)Strong Equilibria: stability against coalition moves.

A coalition ``Gamma`` (``|Gamma| <= k``) may delete any set of edges with at
least one endpoint inside ``Gamma`` and add any set of edges with *both*
endpoints inside; the move is improving iff **every** member strictly
benefits.  BSE is the special case ``k = n``.

Member costs after a move use clean post-move strategies: a member saves
``alpha`` for each incident deleted edge and pays ``alpha`` for each incident
added edge, i.e. ``cost(u) = alpha * deg'(u) + dist'(u)`` in the mutated
graph (Section 1.1's strategy/graph bijection).

Exhaustive checking is doubly exponential-ish (coalitions x edge subsets);
the exact checker enumerates with sound member-benefit pruning and an
explicit evaluation budget, raising :class:`SearchBudgetExceeded` when the
instance is out of reach — callers then combine scaled-down exact checks,
the paper's case analyses, and :func:`probe_coalition_moves`.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Iterable, Sequence

from repro.core.moves import CoalitionMove, normalize_edge
from repro.core.state import GameState
from repro.equilibria.neighborhood import SearchBudgetExceeded

__all__ = [
    "find_improving_coalition_move",
    "is_k_strong_equilibrium",
    "is_strong_equilibrium",
    "probe_coalition_moves",
]


def _adjacency_sets(graph) -> list[set[int]]:
    adjacency: list[set[int]] = [set() for _ in range(graph.number_of_nodes())]
    for u, v in graph.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    return adjacency


def _dist_total(adjacency: list[set[int]], source: int, unreachable: int) -> int:
    """BFS total distance from ``source`` over a list-of-sets adjacency."""
    n = len(adjacency)
    dist = [-1] * n
    dist[source] = 0
    queue = deque([source])
    total = 0
    seen = 1
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                total += dist[neighbor]
                seen += 1
                queue.append(neighbor)
    return total + (n - seen) * unreachable


def _member_improves(
    state: GameState,
    adjacency: list[set[int]],
    member: int,
    base_dist: int,
) -> bool:
    new_dist = _dist_total(adjacency, member, state.m_constant)
    delta_buy = len(adjacency[member]) - state.graph.degree(member)
    # alpha * delta_buy + (new_dist - base_dist) < 0, exactly
    return state.alpha * delta_buy < base_dist - new_dist


def _coalition_edge_space(
    state: GameState, coalition: tuple[int, ...]
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    members = set(coalition)
    removable = sorted(
        normalize_edge(u, v)
        for u, v in state.graph.edges
        if u in members or v in members
    )
    addable = sorted(
        normalize_edge(u, v)
        for u, v in itertools.combinations(sorted(members), 2)
        if not state.graph.has_edge(u, v)
    )
    return removable, addable


def find_improving_coalition_move(
    state: GameState,
    max_coalition_size: int,
    coalitions: Iterable[tuple[int, ...]] | None = None,
    max_evaluations: int = 5_000_000,
) -> CoalitionMove | None:
    """Exhaustive search for an improving coalition move of size at most
    ``max_coalition_size`` (raises :class:`SearchBudgetExceeded` over budget).
    """
    if coalitions is None:
        nodes = range(state.n)
        coalitions = itertools.chain.from_iterable(
            itertools.combinations(nodes, size)
            for size in range(1, min(max_coalition_size, state.n) + 1)
        )
    base_dist = {u: state.dist.total(u) for u in range(state.n)}
    base_adjacency = _adjacency_sets(state.graph)
    budget = max_evaluations
    for coalition in coalitions:
        removable, addable = _coalition_edge_space(state, coalition)
        space = 2 ** (len(removable) + len(addable))
        budget -= space
        if budget < 0:
            raise SearchBudgetExceeded(
                f"coalition {coalition}: 2^{len(removable) + len(addable)} "
                f"move candidates exceed the evaluation budget"
            )
        members = list(coalition)
        for removed in _powerset(removable):
            for added in _powerset(addable):
                if not removed and not added:
                    continue
                adjacency = [set(neighbors) for neighbors in base_adjacency]
                for u, v in removed:
                    adjacency[u].discard(v)
                    adjacency[v].discard(u)
                ok = True
                for u, v in added:
                    if v in adjacency[u]:
                        ok = False  # re-adding a removed edge is a no-op combo
                        break
                    adjacency[u].add(v)
                    adjacency[v].add(u)
                if not ok:
                    continue
                if all(
                    _member_improves(state, adjacency, member, base_dist[member])
                    for member in members
                ):
                    return CoalitionMove(
                        coalition=tuple(coalition),
                        removed_edges=tuple(removed),
                        added_edges=tuple(added),
                    )
    return None


def _powerset(items: Sequence) -> Iterable[tuple]:
    return itertools.chain.from_iterable(
        itertools.combinations(items, size) for size in range(len(items) + 1)
    )


def is_k_strong_equilibrium(
    state: GameState,
    k: int,
    max_evaluations: int = 5_000_000,
) -> bool:
    """Exact k-BSE check (may raise :class:`SearchBudgetExceeded`)."""
    return (
        find_improving_coalition_move(state, k, max_evaluations=max_evaluations)
        is None
    )


def is_strong_equilibrium(
    state: GameState, max_evaluations: int = 5_000_000
) -> bool:
    """Exact BSE (= n-BSE) check (may raise :class:`SearchBudgetExceeded`)."""
    return is_k_strong_equilibrium(state, state.n, max_evaluations=max_evaluations)


def probe_coalition_moves(
    state: GameState,
    rng: random.Random,
    max_coalition_size: int,
    samples: int = 1000,
) -> CoalitionMove | None:
    """Randomized refuter: samples coalitions and random legal moves.

    A returned move is a certified violation; ``None`` proves nothing.
    """
    nodes = list(range(state.n))
    base_dist = {u: state.dist.total(u) for u in nodes}
    base_adjacency = _adjacency_sets(state.graph)
    for _ in range(samples):
        size = rng.randint(1, min(max_coalition_size, state.n))
        coalition = tuple(sorted(rng.sample(nodes, size)))
        removable, addable = _coalition_edge_space(state, coalition)
        removed = tuple(e for e in removable if rng.random() < 0.3)
        added = tuple(e for e in addable if rng.random() < 0.5)
        if not removed and not added:
            continue
        if set(removed) & set(added):
            continue
        adjacency = [set(neighbors) for neighbors in base_adjacency]
        for u, v in removed:
            adjacency[u].discard(v)
            adjacency[v].discard(u)
        for u, v in added:
            adjacency[u].add(v)
            adjacency[v].add(u)
        if all(
            _member_improves(state, adjacency, member, base_dist[member])
            for member in coalition
        ):
            return CoalitionMove(
                coalition=coalition,
                removed_edges=removed,
                added_edges=added,
            )
    return None
