"""Uniform dispatch from :class:`~repro.core.concepts.Concept` to checkers.

Used by the lattice experiments (Figure 1a), the dynamics move generators and
the empirical-PoA sweeps, which all quantify over several concepts at once.
"""

from __future__ import annotations

from typing import Callable

from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.add import (
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.remove import is_remove_equilibrium
from repro.equilibria.strong import is_k_strong_equilibrium, is_strong_equilibrium
from repro.equilibria.swap import is_bilateral_swap_equilibrium

__all__ = ["check", "checker_for"]

_CHECKERS: dict[Concept, Callable[[GameState], bool]] = {
    Concept.RE: is_remove_equilibrium,
    Concept.BAE: is_bilateral_add_equilibrium,
    Concept.PS: is_pairwise_stable,
    Concept.BSWE: is_bilateral_swap_equilibrium,
    Concept.BGE: is_bilateral_greedy_equilibrium,
    Concept.BNE: is_neighborhood_equilibrium,
    Concept.BSE: is_strong_equilibrium,
    Concept.UNILATERAL_AE: is_unilateral_add_equilibrium,
}


def checker_for(concept: Concept) -> Callable[[GameState], bool]:
    """The ``is_*`` function for a concept (``UNILATERAL_NE`` needs an
    assignment and is not dispatchable here)."""
    try:
        return _CHECKERS[concept]
    except KeyError:
        raise ValueError(f"no parameter-free checker for {concept}") from None


def check(state: GameState, concept: Concept, k: int | None = None) -> bool:
    """Check ``state`` against ``concept`` (pass ``k`` for k-BSE)."""
    if k is not None:
        return is_k_strong_equilibrium(state, k)
    return checker_for(concept)(state)
