"""Bilateral Neighborhood Equilibrium (BNE) — the bilateral analogue of NE.

A *neighborhood move* around a center ``u`` removes any subset ``R`` of
``u``'s edges and adds edges to any set ``A`` of new partners; it is
improving iff ``u`` **and every member of** ``A`` strictly benefit (removed
partners are not asked).

Checking BNE is exponential in ``deg(u)`` and in the number of plausible
partners.  The exact checker keeps the search finite with two *sound*
reductions and an explicit budget:

* **willing-partner pruning** (the paper's own argument, cf. Prop. A.5):
  every distance improvement for a new partner ``a`` routes through ``u``,
  so ``a``'s total gain is at most
  ``sum_x max(0, d(a,x) - 2) + max(0, d(a,u) - 1)``; partners whose bound
  does not exceed ``alpha`` can never strictly benefit and are discarded;
* **size pruning**: the center's distance gain is at most
  ``dist(u) - (n-1)``, so improving moves satisfy
  ``alpha * (|A| - |R|) < dist(u) - (n - 1)``.

Candidate evaluation runs on the
:class:`~repro.core.speculative.SpeculativeEvaluator` kernel: each removal
subset is applied to the cached distance engine **once** and amortised
(via nested LIFO undo scopes) across every addition subset tried on top of
it, and each candidate's verdict is read from incrementally maintained
degree/total deltas — no per-candidate graph copies and no per-candidate
BFS.  The search performs zero full APSP builds beyond the one that
materialised the state's matrix.

If the remaining space exceeds ``max_evaluations`` the checker raises
:class:`SearchBudgetExceeded` rather than silently answering — callers fall
back to the paper's sufficient conditions plus :func:`probe_neighborhood_moves`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro._alpha import strict_gt_threshold
from repro._rng import RngLike, coerce_rng
from repro.core.moves import NeighborhoodMove
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState

__all__ = [
    "SearchBudgetExceeded",
    "find_improving_neighborhood_move",
    "is_neighborhood_equilibrium",
    "partner_gain_upper_bound",
    "probe_neighborhood_moves",
    "willing_partners",
]


class SearchBudgetExceeded(RuntimeError):
    """The exact exhaustive search would exceed its evaluation budget."""


def partner_gain_upper_bound(state: GameState, partner: int, center: int) -> int:
    """Sound upper bound on ``partner``'s distance gain in any move around
    ``center`` that links the two.

    Every strictly shorter path for ``partner`` passes through ``center``
    (all changed edges are incident to ``center``), hence ends at distance at
    least 2 — except the distance to ``center`` itself, which can drop to 1.
    The argument is purely metric, so under a traffic model each term is
    simply weighted by ``partner``'s (non-negative) demand toward the
    destination — still a sound bound on the weighted gain.  Under a cost
    model the same distance floors push through monotone ``f``: each
    destination's value can drop at most to ``f(2)`` (``f(1)`` for the
    center) for sum aggregates, and a max aggregate can never drop below
    the agent's model floor.
    """
    row = state.dist.row(partner)
    if state.modeled:
        ops = state.model_ops
        if ops.aggregate == "max":
            # coarse but sound: the max value can never drop below the
            # agent's floor (max-weight * f(1))
            return ops.row_value(partner, row) - int(ops.floors()[partner])
        table = ops.table
        n = state.n
        f1 = int(table[min(1, n - 1)])
        f2 = int(table[min(2, n - 1)])
        fvals = ops.apply_f(row)
        slack = np.maximum(fvals - f2, 0)
        f_center = int(fvals[center])
        if ops.weights is not None:
            weights = ops.weights[partner]
            bound = int((weights * slack).sum())
            w_center = int(weights[center])
            bound -= w_center * max(0, f_center - f2)
            bound += w_center * max(0, f_center - f1)
            return bound
        bound = int(slack.sum())
        bound -= max(0, f_center - f2)
        bound += max(0, f_center - f1)
        return bound
    slack = row - 2
    to_center = int(row[center])
    if state.weighted:
        weights = state.traffic.weights[partner]
        bound = int((weights * np.maximum(slack, 0)).sum())
        w_center = int(weights[center])
        bound -= w_center * max(0, to_center - 2)
        bound += w_center * max(0, to_center - 1)
        return bound
    bound = int(slack[slack > 0].sum())
    # correct the center term: admissible floor is 1, not 2
    bound -= max(0, to_center - 2)
    bound += max(0, to_center - 1)
    return bound


def willing_partners(state: GameState, center: int) -> list[int]:
    """Non-neighbors of ``center`` that could conceivably gain more than
    ``alpha`` from joining a neighborhood move (sound over-approximation)."""
    threshold = strict_gt_threshold(state.alpha)
    neighbors = set(state.graph.neighbors(center))
    result = []
    for node in range(state.n):
        if node == center or node in neighbors:
            continue
        if partner_gain_upper_bound(state, node, center) >= threshold:
            result.append(node)
    return result


def _center_space_size(degree: int, willing: int, max_add: int | None) -> int:
    add_cap = willing if max_add is None else min(willing, max_add)
    subsets = sum(math.comb(willing, size) for size in range(add_cap + 1))
    return (2**degree) * subsets


def find_improving_neighborhood_move(
    state: GameState,
    centers: Iterable[int] | None = None,
    max_evaluations: int = 2_000_000,
    max_add: int | None = None,
    max_remove: int | None = None,
) -> NeighborhoodMove | None:
    """Exhaustive search for an improving neighborhood move.

    Exact (within ``max_add`` / ``max_remove`` if given); raises
    :class:`SearchBudgetExceeded` if the pruned space is still larger than
    ``max_evaluations``.  Candidates are evaluated on the speculative
    kernel: each removal subset is applied once and shared across its
    addition subsets, then rolled back through LIFO undo tokens.
    """
    if centers is None:
        centers = range(state.n)
    alpha = state.alpha
    spec = SpeculativeEvaluator(state)
    for center in centers:
        neighbors = sorted(state.graph.neighbors(center))
        willing = willing_partners(state, center)
        degree = len(neighbors)
        if max_remove is not None:
            degree = min(degree, max_remove)
        if _center_space_size(degree, len(willing), max_add) > max_evaluations:
            raise SearchBudgetExceeded(
                f"center {center}: deg={len(neighbors)}, "
                f"willing={len(willing)} exceeds budget {max_evaluations}"
            )
        # alpha * (|A| - |R|) < dist(center) - floor(center) is necessary
        # for the center to strictly benefit (the best imaginable distance
        # total is n - 1 uniform, the center's demand mass weighted).
        slack = spec.base_dist(center) - spec.dist_floor(center)
        remove_cap = len(neighbors) if max_remove is None else max_remove
        add_cap = len(willing) if max_add is None else min(max_add, len(willing))
        move = _dfs_center_space(
            spec, center, neighbors, willing, remove_cap, add_cap, slack
        )
        if move is not None:
            return move
    return None


def _dfs_center_space(
    spec: SpeculativeEvaluator,
    center: int,
    neighbors: Sequence[int],
    willing: Sequence[int],
    remove_cap: int,
    add_cap: int,
    slack,
) -> NeighborhoodMove | None:
    """DFS over the (removed, added) subsets around one center.

    Removal subsets walk the engine with push/pop tokens (siblings share
    their common prefix: one apply + one undo per removal node); each
    removal prefix then evaluates its whole addition powerset through a
    rows-only :class:`~repro.core.speculative.Fold` over the center
    and the willing partners — no matrix mutation per addition candidate.

    The size-pruning invariant matches the combination enumeration it
    replaces: a candidate is evaluated iff ``alpha * (|A| - |R|) <
    slack`` (necessary for the center to benefit), and since folding one
    more partner only raises ``|A|``, a failing count prunes the whole
    sibling suffix.
    """
    threshold = strict_gt_threshold(spec.alpha)
    tracked = (center, *willing)
    removed: list[int] = []
    added: list[int] = []

    def fold_improves(fold) -> bool:
        # the center pays |A| - |R| extra edges; each added partner pays 1
        gain_center = spec.base_dist(center) - fold.dist_total(center)
        if not spec.alpha_lt(len(added) - len(removed), gain_center):
            return False
        for partner in added:
            if spec.base_dist(partner) - fold.dist_total(partner) < threshold:
                return False
        return True

    def descend_adds(fold, start: int) -> NeighborhoodMove | None:
        if len(added) >= add_cap:
            return None
        if not spec.alpha_lt(len(added) + 1 - len(removed), slack):
            return None  # a larger A only makes it worse
        for index in range(start, len(willing)):
            partner = willing[index]
            child = fold.extend(center, partner)
            added.append(partner)
            try:
                spec.note_evaluation()
                if fold_improves(child):
                    return NeighborhoodMove(
                        center=center,
                        removed=tuple(removed),
                        added=tuple(added),
                    )
                found = descend_adds(child, index + 1)
                if found is not None:
                    return found
            finally:
                added.pop()
        return None

    def descend_removes(start: int) -> NeighborhoodMove | None:
        if willing:
            found = descend_adds(spec.fold(tracked), 0)
            if found is not None:
                return found
        if len(removed) >= remove_cap:
            return None
        for index in range(start, len(neighbors)):
            partner = neighbors[index]
            spec.push("remove", center, partner)
            removed.append(partner)
            try:
                if spec.alpha_lt(-len(removed), slack):
                    spec.note_evaluation()
                    if spec.improves(center):
                        return NeighborhoodMove(
                            center=center,
                            removed=tuple(removed),
                            added=(),
                        )
                found = descend_removes(index + 1)
                if found is not None:
                    return found
            finally:
                removed.pop()
                spec.pop()
        return None

    return descend_removes(0)


def is_neighborhood_equilibrium(
    state: GameState,
    centers: Iterable[int] | None = None,
    max_evaluations: int = 2_000_000,
) -> bool:
    """Exact BNE check (may raise :class:`SearchBudgetExceeded`)."""
    return (
        find_improving_neighborhood_move(
            state, centers=centers, max_evaluations=max_evaluations
        )
        is None
    )


def probe_neighborhood_moves(
    state: GameState,
    rng: RngLike = None,
    samples: int = 1000,
    max_add: int = 3,
    max_remove: int = 3,
    centers: Sequence[int] | None = None,
) -> NeighborhoodMove | None:
    """Randomized refuter: samples bounded neighborhood moves.

    A returned move is a *certified* violation; ``None`` proves nothing.
    Used on instances whose exact search is out of budget.  ``rng`` may be
    a ``random.Random``, an integer seed, or ``None`` (seed 0), so probe
    verdicts are reproducible end-to-end.  Sampled candidates are
    evaluated on the speculative kernel.
    """
    rng = coerce_rng(rng)
    nodes = list(range(state.n)) if centers is None else list(centers)
    spec = SpeculativeEvaluator(state)
    for _ in range(samples):
        center = rng.choice(nodes)
        neighbors = sorted(state.graph.neighbors(center))
        willing = willing_partners(state, center)
        if not neighbors and not willing:
            continue
        removed_size = rng.randint(0, min(max_remove, len(neighbors)))
        added_size = rng.randint(0, min(max_add, len(willing)))
        if removed_size == 0 and added_size == 0:
            continue
        removed = tuple(rng.sample(neighbors, removed_size))
        added = tuple(rng.sample(willing, added_size))
        move = NeighborhoodMove(center=center, removed=removed, added=added)
        if spec.move_improves(move):
            return move
    return None
