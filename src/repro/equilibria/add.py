"""(Bilateral) Add Equilibria: stability against creating one new edge.

Adding edge ``uv`` changes ``u``'s distances by the exact one-edge identity
``d'(u, w) = min(d(u, w), 1 + d(v, w))``, so the distance gain of each
endpoint is a relu-sum over one row difference of the APSP matrix.  The
whole check is a vectorised ``O(n^3)`` integer computation — exact at any
size we run.

* **BAE** (bilateral): edge ``uv`` is an improving move iff *both* endpoints
  gain strictly more than ``alpha``.
* **unilateral AE** (Section 2 reference): agent ``u`` alone pays, so a
  single gain above ``alpha`` already breaks stability.
"""

from __future__ import annotations

import numpy as np

from repro._alpha import strict_gt_threshold
from repro.core.moves import AddEdge
from repro.core.state import GameState
from repro.graphs.distances import weighted_added_edge_dist_gain

__all__ = [
    "add_gain",
    "find_improving_bilateral_add",
    "find_improving_unilateral_add",
    "is_bilateral_add_equilibrium",
    "is_unilateral_add_equilibrium",
    "pairwise_add_gains",
]


def add_gain(state: GameState, u: int, v: int) -> int:
    """(Weighted/model-valued) distance gain of agent ``u`` when edge
    ``uv`` is created."""
    if state.modeled:
        ops = state.model_ops
        dist = state.dist_matrix
        new_row = np.minimum(dist[u], 1 + dist[v])
        return ops.row_value(u, dist[u]) - ops.row_value(u, new_row)
    if state.weighted:
        return weighted_added_edge_dist_gain(
            state.dist_matrix, state.traffic.weights[u], u, v
        )
    return state.dist.add_gain(u, v)


def pairwise_add_gains(state: GameState) -> np.ndarray:
    """Matrix ``G`` with ``G[u, v]`` = distance gain of ``u`` from edge ``uv``.

    ``G`` is not symmetric.  Entries on the diagonal and for existing edges
    are meaningless and set to zero.  Under a traffic model each row's
    relu improvements are weighted by ``u``'s demand row (one extra
    matrix-vector product per agent — same ``O(n^3)`` total).  Under a
    cost model the gains are model-value drops: each hypothetical row
    ``min(d(u, .), 1 + d(v, .))`` maps through the table and aggregates —
    non-negative for sum and max aggregates alike since the new row is
    entry-wise no larger and ``f`` is monotone.
    """
    dist = state.dist_matrix
    n = state.n
    gains = np.zeros((n, n), dtype=np.int64)
    if state.modeled:
        ops = state.model_ops
        for u in range(n):
            new_rows = np.minimum(dist[u][None, :], dist + 1)  # row v: edge uv
            base = ops.row_value(u, dist[u])
            gains[u] = base - ops.rows_value(u, new_rows)
        gains[np.arange(n), np.arange(n)] = 0
        for u, v in state.graph.edges:
            gains[u, v] = 0
            gains[v, u] = 0
        return gains
    weights = state.traffic.weights if state.weighted else None
    for u in range(n):
        improvement = dist[u][None, :] - dist - 1  # row v: against partner v
        np.maximum(improvement, 0, out=improvement)
        if weights is None:
            gains[u] = improvement.sum(axis=1)
        else:
            gains[u] = improvement @ weights[u]
    gains[np.arange(n), np.arange(n)] = 0
    for u, v in state.graph.edges:
        gains[u, v] = 0
        gains[v, u] = 0
    return gains


def _candidate_pairs(state: GameState, threshold: int):
    """Non-edges whose *both-way* gains reach ``threshold``, ascending."""
    gains = pairwise_add_gains(state)
    both = (gains >= threshold) & (gains.T >= threshold)
    candidates = np.argwhere(np.triu(both, k=1))
    return gains, [tuple(map(int, pair)) for pair in candidates]


def find_improving_bilateral_add(state: GameState) -> AddEdge | None:
    """First mutually improving edge addition, or ``None`` (exact).

    The vectorised gain matrix (an engine-row query) prunes to the exact
    candidate set; the returned certificate is confirmed through the
    speculative kernel so every concept shares one evaluation path.
    """
    from repro.core.speculative import SpeculativeEvaluator

    threshold = strict_gt_threshold(state.alpha)
    _, candidates = _candidate_pairs(state, threshold)
    if not candidates:
        return None
    spec = SpeculativeEvaluator(state)
    for u, v in candidates:
        move = AddEdge(u, v)
        if spec.move_improves(move):
            return move
    return None


def is_bilateral_add_equilibrium(state: GameState) -> bool:
    """Exact BAE check."""
    return find_improving_bilateral_add(state) is None


def find_improving_unilateral_add(state: GameState) -> AddEdge | None:
    """First unilaterally improving addition (only the buyer pays).

    A buyer ``u`` improves iff her distance gain strictly exceeds
    ``alpha`` — exactly the kernel's single-agent verdict (her degree
    grows by one, the partner is not asked), used here to confirm the
    vectorised candidates.
    """
    from repro.core.speculative import SpeculativeEvaluator

    threshold = strict_gt_threshold(state.alpha)
    gains = pairwise_add_gains(state)
    either = (gains >= threshold) | (gains.T >= threshold)
    candidates = np.argwhere(np.triu(either, k=1))
    if not candidates.size:
        return None
    spec = SpeculativeEvaluator(state)
    for u, v in candidates:
        u, v = int(u), int(v)
        move = AddEdge(u, v)
        if spec.move_improves(move, agents=(u,)) or spec.move_improves(
            move, agents=(v,)
        ):
            return move
    return None


def is_unilateral_add_equilibrium(state: GameState) -> bool:
    """Exact unilateral Add Equilibrium check (assignment-independent)."""
    return find_improving_unilateral_add(state) is None
