"""beta-approximate stability — how far from equilibrium is a state?

For the unilateral NCG, Lenzner [32] showed that greedy-stable graphs are
3-approximate Nash equilibria.  The bilateral analogue is useful here as a
*measurement* device: a state is in beta-approximate X-equilibrium if no
improving move of X's move space lowers some required beneficiary's cost by
a factor greater than ``beta``, i.e. for every move some beneficiary has

    cost_after * beta >= cost_before.

``beta = 1`` recovers the exact concepts; the smallest stabilising beta,
found by :func:`stability_factor`, quantifies instability — the dynamics
benchmarks use it to show how far random networks start from stability and
how the gap closes along improving paths.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro._alpha import AlphaLike, as_alpha
from repro.core.concepts import Concept
from repro.core.moves import Move
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.dynamics.movegen import improving_moves

__all__ = [
    "is_approximate_equilibrium",
    "move_improvement_factor",
    "stability_factor",
]


def _improvement_factor(spec: SpeculativeEvaluator, move: Move) -> Fraction:
    """Smallest beneficiary ``before / after`` ratio via the kernel."""
    factor: Fraction | None = None
    with spec.speculate(move):
        for agent in move.beneficiaries():
            before = spec.base_cost(agent)
            after = before + spec.cost_delta(agent)
            if after <= 0:
                raise ValueError("costs must stay positive")
            ratio = Fraction(before) / Fraction(after)
            if factor is None or ratio < factor:
                factor = ratio
    assert factor is not None
    return factor


def move_improvement_factor(state: GameState, move: Move) -> Fraction:
    """The *smallest* beneficiary improvement factor of a move.

    A move strictly improves every beneficiary iff this factor exceeds 1;
    a state is beta-approximately stable against the move iff the factor
    is at most beta.  Costs are read off the speculative kernel (exact).
    """
    return _improvement_factor(SpeculativeEvaluator(state), move)


def is_approximate_equilibrium(
    state: GameState,
    concept: Concept,
    beta: AlphaLike,
) -> bool:
    """Whether no move of ``concept``'s move space improves its whole
    beneficiary set by a factor above ``beta`` (``beta = 1``: exact)."""
    bound = as_alpha(beta)
    if bound < 1:
        raise ValueError("beta must be at least 1")
    spec = SpeculativeEvaluator(state)
    for move in improving_moves(state, concept):
        if _improvement_factor(spec, move) > bound:
            return False
    return True


def stability_factor(
    state: GameState,
    concept: Concept,
    moves: Iterable[Move] | None = None,
) -> Fraction:
    """The smallest beta making the state beta-approximately stable.

    Returns 1 when the state is an exact equilibrium of the concept.
    """
    worst = Fraction(1)
    spec = SpeculativeEvaluator(state)
    pool = improving_moves(state, concept) if moves is None else moves
    for move in pool:
        worst = max(worst, _improvement_factor(spec, move))
    return worst
