"""Best-response dynamics for the unilateral NCG with edge ownership.

Used to *sample* unilateral Pure Nash Equilibria: agents take turns playing
an exact best response (exhaustive over their strategy space, so only small
``n``); a full round without any strict improvement certifies an NE.  This
gives the Section 2 comparisons a supply of genuine NE instances beyond
hand-built ones — e.g. the Corbo–Parkes refutation can be replayed against
dynamics-sampled equilibria.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.core.state import GameState
from repro.equilibria.nash import (
    EdgeAssignment,
    best_response,
    strategy_cost,
)

__all__ = ["UnilateralOutcome", "unilateral_best_response_dynamics"]


@dataclass(frozen=True)
class UnilateralOutcome:
    """Result of a unilateral best-response run."""

    graph: nx.Graph
    assignment: EdgeAssignment
    converged: bool
    rounds: int

    def state(self, alpha) -> GameState:
        return GameState(self.graph, alpha)


def _strategies_to_instance(
    n: int, strategies: dict[int, frozenset[int]]
) -> tuple[nx.Graph, EdgeAssignment]:
    """Create the graph and a covering ownership from strategy sets.

    In the unilateral game an edge exists iff either side buys it; if both
    do, ownership is attributed to the smaller id (the duplicate payment
    disappears at equilibrium anyway, since one side would drop it).
    """
    graph = nx.empty_graph(n)
    owner: dict[tuple[int, int], int] = {}
    for agent, targets in strategies.items():
        for target in targets:
            edge = (agent, target) if agent < target else (target, agent)
            graph.add_edge(*edge)
            if edge not in owner or agent < owner[edge]:
                owner[edge] = agent
    return graph, EdgeAssignment(owner=owner)


def unilateral_best_response_dynamics(
    n: int,
    alpha,
    rng: random.Random,
    max_rounds: int = 60,
    start: nx.Graph | None = None,
) -> UnilateralOutcome:
    """Round-robin exact best responses from a random (or given) start.

    Ownership starts at the smaller endpoint of every edge.  Each round
    visits the agents in random order; convergence means a full round with
    no strict improvement, which is a Pure Nash Equilibrium by definition.
    Exponential per response (``2^(n-1)``), so ``n <= 12`` in practice.
    """
    if start is None:
        from repro.graphs.generation import random_tree

        start = random_tree(n, rng)
    strategies: dict[int, frozenset[int]] = {u: frozenset() for u in range(n)}
    for u, v in start.edges:
        low, high = (u, v) if u < v else (v, u)
        strategies[low] = strategies[low] | {high}

    rounds = 0
    converged = False
    for _ in range(max_rounds):
        rounds += 1
        improved = False
        order = list(range(n))
        rng.shuffle(order)
        for agent in order:
            graph, assignment = _strategies_to_instance(n, strategies)
            state = GameState(graph, alpha)
            current = strategy_cost(
                state, assignment, agent, assignment.strategy(agent)
            )
            optimal, strategy = best_response(state, assignment, agent)
            if optimal < current:
                improved = True
                strategies[agent] = strategy
                # drop other agents' duplicate purchases of agent's edges
                for other in range(n):
                    if other != agent and agent in strategies[other]:
                        if other in strategies[agent]:
                            strategies[other] = strategies[other] - {agent}
        if not improved:
            converged = True
            break
    graph, assignment = _strategies_to_instance(n, strategies)
    return UnilateralOutcome(
        graph=graph, assignment=assignment, converged=converged,
        rounds=rounds,
    )
