"""Remove Equilibrium (RE): no agent gains by dropping one incident edge.

Dropping edge ``uv`` saves ``alpha`` and raises ``u``'s distance cost by

    loss(u, uv) = dist_{G - uv}(u) - dist_G(u),

so ``u`` improves iff ``loss < alpha`` (exact integer vs Fraction).  Bridges
never qualify: disconnection costs at least ``M > alpha * n^3``.  By
Proposition A.2 the RE coincides with the Pure Nash Equilibrium of the BNCG,
so this checker doubles as the bilateral NE test.

Trees are RE for every ``alpha`` (every edge is a bridge); the checker
shortcuts that case.
"""

from __future__ import annotations

from repro.core.moves import RemoveEdge
from repro.core.state import GameState

__all__ = ["find_improving_removal", "is_remove_equilibrium", "removal_loss"]


def removal_loss(state: GameState, actor: int, other: int) -> int:
    """Distance-cost increase for ``actor`` when edge ``actor-other`` goes."""
    after = state.dist.row_after_remove(actor, other)
    return int((after - state.dist.row(actor)).sum())


def find_improving_removal(state: GameState) -> RemoveEdge | None:
    """First improving single-edge removal, or ``None`` (exact, O(m * m)).

    Bridges are skipped straight off the engine's incrementally
    maintained bridge set (no per-check Tarjan pass); both endpoints'
    post-removal losses for the remaining edges come from the engine's
    batched speculative query — the same path the kernel's
    :meth:`~repro.core.speculative.SpeculativeEvaluator.remove_loss_pair`
    delegates to (one BFS pair per edge; the graph is never mutated).
    """
    if state.is_tree():
        return None  # removing any tree edge disconnects: loss >= M > alpha
    dm = state.dist
    for u, v in state.graph.edges:
        if dm.is_bridge(u, v):
            continue
        loss_u, loss_v = dm.remove_loss_pair(u, v)
        for actor, other, loss in ((u, v, loss_u), (v, u, loss_v)):
            if loss < state.alpha:
                return RemoveEdge(actor=actor, other=other)
    return None


def is_remove_equilibrium(state: GameState) -> bool:
    """Exact RE check (equivalently: bilateral Pure Nash, Prop. A.2)."""
    return find_improving_removal(state) is None
