"""Remove Equilibrium (RE): no agent gains by dropping one incident edge.

Dropping edge ``uv`` saves ``alpha`` and raises ``u``'s distance cost by

    loss(u, uv) = dist_{G - uv}(u) - dist_G(u),

so ``u`` improves iff ``loss < alpha`` (exact integer vs Fraction).  Under
the uniform cost model bridges never qualify: disconnection costs at least
``M > alpha * n^3``.  By Proposition A.2 the RE coincides with the Pure
Nash Equilibrium of the BNCG, so this checker doubles as the bilateral NE
test.

Trees are RE for every ``alpha`` (every edge is a bridge); the checker
shortcuts that case.

**Heterogeneous traffic** changes the bridge story: an agent with *zero*
demand toward a bridge's far side pays nothing for the disconnection, so
bridge removals can be improving and must be evaluated, not skipped.  The
weighted checker charges each bridge removal through the engine's
search-free two-component split — the far side's entries jump to the
``M`` sentinel and the loss is the actor's demand mass toward that side
times ``M`` minus the saved real distances — and only non-bridges pay a
probe BFS, exactly like the uniform path.

**Non-linear cost models** reuse the same every-edge scan with losses
read through the model's value arithmetic (a zero-demand cut side makes
a bridge droppable there too, and a max aggregate can be entirely
indifferent to a removal).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.moves import RemoveEdge
from repro.core.state import GameState

__all__ = [
    "find_improving_removal",
    "is_remove_equilibrium",
    "modeled_improving_removals",
    "removal_loss",
    "weighted_improving_removals",
]


def removal_loss(state: GameState, actor: int, other: int) -> int:
    """(Weighted/model-valued) distance-cost increase for ``actor`` when
    edge ``actor-other`` goes."""
    after = state.dist.row_after_remove(actor, other)
    if state.modeled:
        ops = state.model_ops
        return ops.row_value(actor, after) - ops.row_value(
            actor, state.dist.row(actor)
        )
    if state.weighted:
        weights = state.traffic.weights[actor]
        return int((weights * (after - state.dist.row(actor))).sum())
    return int((after - state.dist.row(actor)).sum())


def weighted_improving_removals(state: GameState) -> Iterator[RemoveEdge]:
    """All improving removals of a *weighted* state, enumeration order.

    Evaluates every edge — bridges included, through the engine's
    mutation-free split weighting each side's demand mass (zero demand
    across the cut makes a bridge droppable).  Losses are demand-weighted
    row diffs straight off the engine (no per-round totals snapshot),
    and the single scan is shared by the RE checker and the removal move
    generator so the two can never disagree.
    """
    dm = state.dist
    weights = state.traffic.weights
    for u, v in list(state.graph.edges):
        row_u, row_v = dm.rows_after_remove(u, v)
        loss_u = int((weights[u] * (row_u - dm.matrix[u])).sum())
        loss_v = int((weights[v] * (row_v - dm.matrix[v])).sum())
        for actor, other, loss in ((u, v, loss_u), (v, u, loss_v)):
            if loss < state.alpha:
                yield RemoveEdge(actor=actor, other=other)
                break  # the edge can only be removed once


def modeled_improving_removals(state: GameState) -> Iterator[RemoveEdge]:
    """All improving removals of a *modeled* state, enumeration order.

    The cost-model analogue of :func:`weighted_improving_removals`: every
    edge — bridges included — is charged through the engine's
    mutation-free removal query, with both endpoints' losses read as
    model-value diffs.  Shared by the RE checker and the removal move
    generator so the two can never disagree.
    """
    dm = state.dist
    ops = state.model_ops
    for u, v in list(state.graph.edges):
        row_u, row_v = dm.rows_after_remove(u, v)
        loss_u = ops.row_value(u, row_u) - ops.row_value(u, dm.matrix[u])
        loss_v = ops.row_value(v, row_v) - ops.row_value(v, dm.matrix[v])
        for actor, other, loss in ((u, v, loss_u), (v, u, loss_v)):
            if loss < state.alpha:
                yield RemoveEdge(actor=actor, other=other)
                break  # the edge can only be removed once


def find_improving_removal(state: GameState) -> RemoveEdge | None:
    """First improving single-edge removal, or ``None`` (exact, O(m * m)).

    Uniform states skip bridges straight off the engine's incrementally
    maintained bridge set (no per-check Tarjan pass) — and trees
    entirely; both endpoints' post-removal losses for the remaining
    edges come from the engine's batched speculative query — the same
    path the kernel's
    :meth:`~repro.core.speculative.SpeculativeEvaluator.remove_loss_pair`
    delegates to (one BFS pair per edge; the graph is never mutated).
    Weighted states take :func:`weighted_improving_removals`; modeled
    states :func:`modeled_improving_removals`.
    """
    if state.modeled:
        return next(modeled_improving_removals(state), None)
    if state.weighted:
        return next(weighted_improving_removals(state), None)
    if state.is_tree():
        return None  # removing any tree edge disconnects: loss >= M > alpha
    dm = state.dist
    for u, v in state.graph.edges:
        if dm.is_bridge(u, v):
            continue
        loss_u, loss_v = dm.remove_loss_pair(u, v)
        for actor, other, loss in ((u, v, loss_u), (v, u, loss_v)):
            if loss < state.alpha:
                return RemoveEdge(actor=actor, other=other)
    return None


def is_remove_equilibrium(state: GameState) -> bool:
    """Exact RE check (equivalently: bilateral Pure Nash, Prop. A.2)."""
    return find_improving_removal(state) is None
