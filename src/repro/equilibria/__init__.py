"""Equilibrium checkers for every solution concept of the paper.

Each module exposes two flavours per concept:

* ``find_improving_*`` — returns a concrete improving move (a *violation
  certificate*) or ``None``;
* ``is_*`` — boolean convenience wrapper.

Polynomial checkers (RE, AE/BAE, PS, BSwE, BGE) are exact at any size.
Exponential ones (BNE, k-BSE, BSE, unilateral NE) are exact within explicit
search guards and are complemented by randomized probing refuters.
"""

from repro.equilibria.approximate import (
    is_approximate_equilibrium,
    move_improvement_factor,
    stability_factor,
)
from repro.equilibria.certificates import StabilityReport, validate_certificate
from repro.equilibria.diagnose import diagnose
from repro.equilibria.remove import find_improving_removal, is_remove_equilibrium
from repro.equilibria.add import (
    find_improving_bilateral_add,
    find_improving_unilateral_add,
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.swap import find_improving_swap, is_bilateral_swap_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.neighborhood import (
    find_improving_neighborhood_move,
    is_neighborhood_equilibrium,
    probe_neighborhood_moves,
)
from repro.equilibria.strong import (
    find_improving_coalition_move,
    is_k_strong_equilibrium,
    is_strong_equilibrium,
    probe_coalition_moves,
)
from repro.equilibria.nash import (
    EdgeAssignment,
    best_response,
    is_nash_equilibrium,
)
from repro.equilibria.registry import check, checker_for

__all__ = [
    "EdgeAssignment",
    "StabilityReport",
    "best_response",
    "check",
    "checker_for",
    "diagnose",
    "is_approximate_equilibrium",
    "move_improvement_factor",
    "stability_factor",
    "find_improving_bilateral_add",
    "find_improving_coalition_move",
    "find_improving_neighborhood_move",
    "find_improving_removal",
    "find_improving_swap",
    "find_improving_unilateral_add",
    "is_bilateral_add_equilibrium",
    "is_bilateral_greedy_equilibrium",
    "is_bilateral_swap_equilibrium",
    "is_k_strong_equilibrium",
    "is_nash_equilibrium",
    "is_neighborhood_equilibrium",
    "is_pairwise_stable",
    "is_remove_equilibrium",
    "is_strong_equilibrium",
    "is_unilateral_add_equilibrium",
    "probe_coalition_moves",
    "probe_neighborhood_moves",
    "validate_certificate",
]
