"""One-call stability profile of a state across the cooperation ladder.

``diagnose(state)`` answers "where on the ladder does this network sit?":
for every concept it reports stability, the violating move (certificate)
when unstable, and whether the verdict is exhaustive — exponential concepts
degrade gracefully to budgeted/probing verdicts instead of failing.
"""

from __future__ import annotations

from repro._rng import RngLike, coerce_rng
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.add import (
    find_improving_bilateral_add,
    find_improving_unilateral_add,
)
from repro.equilibria.certificates import StabilityReport
from repro.equilibria.neighborhood import (
    SearchBudgetExceeded,
    find_improving_neighborhood_move,
    probe_neighborhood_moves,
)
from repro.equilibria.remove import find_improving_removal
from repro.equilibria.strong import (
    find_improving_coalition_move,
    probe_coalition_moves,
)
from repro.equilibria.swap import find_improving_swap

__all__ = ["diagnose"]


def _report_from(move) -> StabilityReport:
    if move is None:
        return StabilityReport(stable=True)
    return StabilityReport(stable=False, certificate=move)


def _budgeted(finder, prober, note: str) -> StabilityReport:
    try:
        return _report_from(finder())
    except SearchBudgetExceeded:
        move = prober()
        if move is not None:
            return StabilityReport(stable=False, certificate=move)
        return StabilityReport(
            stable=True,
            exhaustive=False,
            note=f"budget exceeded; {note}",
        )


def diagnose(
    state: GameState,
    max_coalition_size: int = 3,
    seed: RngLike = 0,
    probe_samples: int = 2000,
) -> dict[Concept, StabilityReport]:
    """Stability report per concept (k-BSE at ``max_coalition_size``).

    Polynomial concepts are exact.  BNE and k-BSE fall back to seeded
    randomized probing when the exhaustive search exceeds its budget; such
    "stable" verdicts carry ``exhaustive=False`` and a note.  ``seed`` may
    be an integer seed or a ready ``random.Random``, so probe verdicts
    are reproducible end-to-end.
    """
    rng = coerce_rng(seed)
    removal = find_improving_removal(state)
    addition = find_improving_bilateral_add(state)
    swap = find_improving_swap(state)

    reports = {
        Concept.RE: _report_from(removal),
        Concept.BAE: _report_from(addition),
        Concept.PS: _report_from(removal or addition),
        Concept.BSWE: _report_from(swap),
        Concept.BGE: _report_from(removal or addition or swap),
        Concept.UNILATERAL_AE: _report_from(
            find_improving_unilateral_add(state)
        ),
        Concept.BNE: _budgeted(
            lambda: find_improving_neighborhood_move(state),
            lambda: probe_neighborhood_moves(
                state, rng, samples=probe_samples
            ),
            "randomized neighborhood probing found no violation",
        ),
        Concept.BSE: _budgeted(
            lambda: find_improving_coalition_move(state, max_coalition_size),
            lambda: probe_coalition_moves(
                state, rng, max_coalition_size, samples=probe_samples
            ),
            f"randomized {max_coalition_size}-coalition probing found "
            "no violation",
        ),
    }
    return reports
