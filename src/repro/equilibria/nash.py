"""Unilateral NCG: edge ownership, best responses, and Pure Nash Equilibria.

In the unilateral game every edge is bought by exactly one endpoint (the
simplifying assumption of Section 2).  A state is a graph plus an
:class:`EdgeAssignment` mapping each edge to its owner; agent ``u``'s
strategy is the set of targets she owns.  A deviation replaces her whole
strategy: edges owned by *others* persist no matter what ``u`` plays.

Computing a best response in the NCG is NP-hard in general, so the exact
checker enumerates all ``2^(n-1)`` strategies per agent and is guarded to
small ``n`` — exactly what the Figure 2 / Proposition 2.3 experiments need.
Each deviation is costed on the speculative kernel (its one-edge deltas
applied to the cached distance engine and undone via LIFO tokens) instead
of rebuilding a graph and running a fresh BFS per strategy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction

import networkx as nx

from repro.core.moves import normalize_edge
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState

__all__ = [
    "EdgeAssignment",
    "best_response",
    "is_nash_equilibrium",
    "is_unilateral_remove_equilibrium",
    "strategy_cost",
]

_MAX_EXACT_N = 16


@dataclass(frozen=True)
class EdgeAssignment:
    """Owner of every edge; owners must be incident to their edge."""

    owner: dict[tuple[int, int], int]

    @staticmethod
    def from_pairs(pairs) -> "EdgeAssignment":
        """Build from ``(owner, target)`` pairs."""
        owner = {}
        for buyer, target in pairs:
            owner[normalize_edge(buyer, target)] = buyer
        return EdgeAssignment(owner=owner)

    def validate(self, graph: nx.Graph) -> None:
        edges = {normalize_edge(u, v) for u, v in graph.edges}
        if set(self.owner) != edges:
            raise ValueError("assignment must cover exactly the graph's edges")
        for (u, v), who in self.owner.items():
            if who not in (u, v):
                raise ValueError(f"owner {who} not incident to edge {u}-{v}")

    def strategy(self, agent: int) -> frozenset[int]:
        """Targets bought by ``agent``."""
        return frozenset(
            (v if u == agent else u)
            for (u, v), who in self.owner.items()
            if who == agent
        )

    def owned_by_others(self, agent: int) -> list[tuple[int, int]]:
        """Edges that persist regardless of ``agent``'s strategy."""
        return [edge for edge, who in self.owner.items() if who != agent]


def _kept_neighbors(assignment: EdgeAssignment, agent: int) -> frozenset[int]:
    """Neighbors of ``agent`` whose edge persists under any deviation
    (bought by the other endpoint)."""
    return frozenset(
        v if u == agent else u
        for (u, v), who in assignment.owner.items()
        if who != agent and agent in (u, v)
    )


def _deviation_deltas(
    state: GameState,
    kept: frozenset[int],
    agent: int,
    strategy: frozenset[int],
) -> list[tuple[str, int, int]]:
    """Ordered one-edge deltas turning the current graph into the graph
    induced by ``agent`` unilaterally playing ``strategy``.

    Only edges incident to ``agent`` can change: edges owned by others
    persist, so the realised neighborhood is ``kept | strategy``.
    """
    current = set(state.graph.neighbors(agent))
    realised = set(kept) | set(strategy)
    return [
        ("remove", agent, other) for other in sorted(current - realised)
    ] + [("add", agent, other) for other in sorted(realised - current)]


def _strategy_cost_speculative(
    spec: SpeculativeEvaluator,
    kept: frozenset[int],
    agent: int,
    strategy: frozenset[int],
) -> Fraction:
    """``agent``'s cost under ``strategy``, read off the kernel.

    Double-bought edges still cost her ``alpha`` each (she pays per
    target, not per realised edge), so the buying term uses
    ``len(strategy)`` rather than the realised degree.
    """
    state = spec.state
    deltas = _deviation_deltas(state, kept, agent, strategy)
    with spec.applied(deltas):
        # current_dist dispatches to the demand-weighted total when the
        # state carries a traffic model (plain row sum otherwise)
        dist_after = spec.current_dist(agent)
    return state.alpha * len(strategy) + dist_after


def strategy_cost(
    state: GameState,
    assignment: EdgeAssignment,
    agent: int,
    strategy: frozenset[int],
) -> Fraction:
    """Cost of ``agent`` if she unilaterally plays ``strategy``.

    The induced graph keeps all edges owned by other agents and adds
    ``agent``'s bought edges; double-bought edges still cost her ``alpha``
    each (she pays per target, not per realised edge).  Evaluated on the
    speculative kernel: the deviation's one-edge deltas are applied to the
    state's cached distance engine and rolled back via undo tokens.
    """
    spec = SpeculativeEvaluator(state)
    kept = _kept_neighbors(assignment, agent)
    return _strategy_cost_speculative(spec, kept, agent, strategy)


def best_response(
    state: GameState,
    assignment: EdgeAssignment,
    agent: int,
) -> tuple[Fraction, frozenset[int]]:
    """Exact best response of ``agent`` (exhaustive over all strategies).

    Guarded to ``n <= 16``: the search space is ``2^(n-1)`` strategies,
    all evaluated against one shared speculative evaluator.
    """
    if state.n > _MAX_EXACT_N:
        raise ValueError(
            f"exact best response supported only for n <= {_MAX_EXACT_N}"
        )
    spec = SpeculativeEvaluator(state)
    kept = _kept_neighbors(assignment, agent)
    others = [v for v in range(state.n) if v != agent]
    best_cost: Fraction | None = None
    best_strategy: frozenset[int] = frozenset()
    for size in range(len(others) + 1):
        for combo in itertools.combinations(others, size):
            strategy = frozenset(combo)
            cost = _strategy_cost_speculative(spec, kept, agent, strategy)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_strategy = strategy
    assert best_cost is not None
    return best_cost, best_strategy


def is_nash_equilibrium(state: GameState, assignment: EdgeAssignment) -> bool:
    """Exact unilateral Pure Nash check for ``(G, f)`` (small ``n`` only)."""
    assignment.validate(state.graph)
    for agent in range(state.n):
        current = strategy_cost(
            state, assignment, agent, assignment.strategy(agent)
        )
        optimal, _ = best_response(state, assignment, agent)
        if optimal < current:
            return False
    return True


def is_unilateral_remove_equilibrium(
    state: GameState, assignment: EdgeAssignment
) -> bool:
    """No owner gains by dropping one of *her own* edges (Prop. 2.2 uses
    the quantification over all assignments; this checks a fixed one).

    Removal losses come from :func:`repro.equilibria.remove.removal_loss`
    — the traffic-aware definition shared with the bilateral RE checker,
    so a weighted state's zero-demand bridge drops are found here too.
    """
    from repro.equilibria.remove import removal_loss

    assignment.validate(state.graph)
    for (u, v), owner in assignment.owner.items():
        other = v if owner == u else u
        if removal_loss(state, owner, other) < state.alpha:
            return False
    return True
