"""Exact arithmetic for the edge price ``alpha``.

All "strictly improving" comparisons in the (Bilateral) Network Creation Game
compare an integer distance gain against ``alpha`` or against
``alpha * k + d`` for integers ``k`` and ``d``.  To keep every equilibrium
decision exact we normalise ``alpha`` to :class:`fractions.Fraction` and
provide integer thresholds so that hot loops can stay in pure-integer (or
numpy ``int64``) arithmetic.

The big constant ``M`` (distance between disconnected agents) is chosen so
that reaching one more agent always dominates any possible saving in buying
or distance cost — see :func:`big_m` for why ``M > alpha*n + n**2`` is
equivalent to the paper's ``M > alpha * n**3`` for every game decision.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

AlphaLike = Union[int, float, str, Fraction]


def as_alpha(value: AlphaLike) -> Fraction:
    """Normalise an edge price to an exact :class:`Fraction`.

    Accepts ints, Fractions, strings (``"104.5"``, ``"1/2"``) and floats.
    Floats are converted through their exact binary value, which is exact for
    the dyadic prices used throughout the paper (``0.5``, ``4.5``, ``104.5``).

    >>> as_alpha("1/2")
    Fraction(1, 2)
    >>> as_alpha(4.5)
    Fraction(9, 2)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("alpha must be a number, not bool")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"alpha must be finite, got {value!r}")
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as an edge price")


def strict_gt_threshold(alpha: Fraction) -> int:
    """Smallest integer strictly greater than ``alpha``.

    For an integer gain ``g``: ``g > alpha  <=>  g >= strict_gt_threshold``.
    This lets vectorised integer code make exact strict comparisons.

    >>> strict_gt_threshold(Fraction(9, 2))
    5
    >>> strict_gt_threshold(Fraction(4))
    5
    """
    return math.floor(alpha) + 1


def strict_lt_threshold(alpha: Fraction) -> int:
    """Largest integer strictly smaller than ``alpha``.

    For an integer gain ``g``: ``g < alpha  <=>  g <= strict_lt_threshold``.
    """
    return math.ceil(alpha) - 1


def big_m(n: int, alpha: Fraction) -> int:
    """The disconnection constant ``M`` for ``n`` agents at price ``alpha``.

    The paper sets ``M > alpha * n**3``; the property that actually matters
    (Section 1.1) is that reaching one more agent dominates *any* possible
    saving in buying cost (at most ``alpha * n``) plus real distance cost
    (at most ``n**2``).  ``M > alpha * n + n**2`` enforces exactly the same
    lexicographic preference, makes identical equilibrium decisions, and
    keeps distance sums inside ``int64`` for much larger instances — so we
    use it.  The result is an integer so distance matrices stay integral.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return max(n, math.floor(alpha * n + n**2) + 1)


def fits_int64(value: int) -> bool:
    """Whether ``value`` leaves doubling headroom inside numpy ``int64``.

    Callers pass the largest sum they will form (e.g. ``n * M``, the worst
    possible total distance); one extra factor of two of headroom guards
    the intermediate differences the checkers compute.
    """
    return abs(value) < 2**62
