"""repro — The Impact of Cooperation in Bilateral Network Creation.

A complete executable reproduction of Friedrich, Gawendowicz, Lenzner and
Zahn (PODC 2023): the Bilateral Network Creation Game, the full ladder of
cooperation-graded solution concepts (RE, BAE, PS, BSwE, BGE, BNE, k-BSE,
BSE), the paper's worst-case constructions, improving-move dynamics, and the
analysis harness that regenerates every table and figure.

Quickstart::

    import networkx as nx
    from repro import GameState, Concept, check

    state = GameState(nx.star_graph(9), alpha=5)
    check(state, Concept.PS)        # True: the star is pairwise stable
    state.rho()                     # Fraction(1, 1): it is a social optimum
"""

from repro.version import __version__
from repro._alpha import as_alpha
from repro.core import (
    AddEdge,
    CoalitionMove,
    Concept,
    GameState,
    Move,
    NeighborhoodMove,
    RemoveEdge,
    Swap,
    optimum_cost,
    optimum_graph,
    social_cost_ratio,
)
from repro.equilibria import (
    EdgeAssignment,
    best_response,
    check,
    diagnose,
    find_improving_bilateral_add,
    find_improving_coalition_move,
    find_improving_neighborhood_move,
    find_improving_removal,
    find_improving_swap,
    is_bilateral_add_equilibrium,
    is_bilateral_greedy_equilibrium,
    is_bilateral_swap_equilibrium,
    is_k_strong_equilibrium,
    is_nash_equilibrium,
    is_neighborhood_equilibrium,
    is_pairwise_stable,
    is_remove_equilibrium,
    is_strong_equilibrium,
    is_unilateral_add_equilibrium,
    validate_certificate,
)

__all__ = [
    "AddEdge",
    "CoalitionMove",
    "Concept",
    "EdgeAssignment",
    "GameState",
    "Move",
    "NeighborhoodMove",
    "RemoveEdge",
    "Swap",
    "__version__",
    "as_alpha",
    "best_response",
    "check",
    "diagnose",
    "find_improving_bilateral_add",
    "find_improving_coalition_move",
    "find_improving_neighborhood_move",
    "find_improving_removal",
    "find_improving_swap",
    "is_bilateral_add_equilibrium",
    "is_bilateral_greedy_equilibrium",
    "is_bilateral_swap_equilibrium",
    "is_k_strong_equilibrium",
    "is_nash_equilibrium",
    "is_neighborhood_equilibrium",
    "is_pairwise_stable",
    "is_remove_equilibrium",
    "is_strong_equilibrium",
    "is_unilateral_add_equilibrium",
    "optimum_cost",
    "optimum_graph",
    "social_cost_ratio",
    "validate_certificate",
]
