"""Convergence statistics for improving-move dynamics.

The convergence behaviour of network creation dynamics is its own line of
work (Kawald and Lenzner, SPAA 2013); the paper's conclusion asks how
agents *reach* the good equilibria its bounds promise.  This module runs
seeded ensembles of dynamics and aggregates: convergence rate, path
lengths, final quality, and the approximate-stability factor of the
starting states.

Final quality is reported on two scales.  ``mean/worst_final_rho`` is
the paper's uniform-linear ``cost / cost(OPT)`` (``None`` under weighted
traffic or a non-linear cost model, where the closed-form optimum does
not apply); ``mean/worst_final_quality`` is
:func:`repro.core.optimum.quality_ratio` — identical to rho in the
uniform-linear regime and anchored to the best clique/star cost
otherwise, so every regime gets a headline on the same scale.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

import networkx as nx

from repro._alpha import AlphaLike
from repro._rng import coerce_rng, trial_seed
from repro.core.concepts import Concept
from repro.core.costmodel import CostModel
from repro.core.optimum import quality_ratio
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.dynamics.engine import run_dynamics
from repro.dynamics.schedulers import Scheduler, first_improvement_scheduler

__all__ = ["ConvergenceStats", "convergence_study"]


@dataclass(frozen=True)
class ConvergenceStats:
    """Aggregate of one dynamics ensemble."""

    concept: Concept
    runs: int
    converged: int
    cycled: int
    mean_rounds: float
    mean_final_rho: float | None
    worst_final_rho: float | None
    mean_start_instability: float  # smallest stabilising beta at the start
    # regime-aware quality (== rho for uniform-linear; clique/star-relative
    # otherwise); defaulted so pre-quality constructors keep working
    mean_final_quality: float | None = None
    worst_final_quality: float | None = None

    @property
    def convergence_rate(self) -> float:
        return self.converged / self.runs


def convergence_study(
    concept: Concept,
    n: int,
    alpha: AlphaLike,
    runs: int = 20,
    seed: int = 0,
    max_rounds: int = 2000,
    scheduler: Scheduler = first_improvement_scheduler,
    start_factory: Callable[[random.Random], nx.Graph] | None = None,
    traffic: TrafficMatrix | None = None,
    cost_model: CostModel | None = None,
) -> ConvergenceStats:
    """Run ``runs`` seeded dynamics from random trees (or a custom start
    factory) and aggregate convergence statistics.

    ``traffic`` / ``cost_model`` run the weighted or generalized game;
    the rho fields are then ``None`` and the quality fields carry the
    clique/star-relative headline instead.
    """
    # imported here to avoid the dynamics <-> equilibria package cycle
    from repro.equilibria.approximate import stability_factor
    from repro.graphs.generation import random_tree

    if start_factory is None:
        start_factory = lambda rng: random_tree(n, rng)  # noqa: E731
    converged = 0
    cycled = 0
    rounds: list[int] = []
    rhos: list[Fraction] = []
    qualities: list[Fraction] = []
    instabilities: list[float] = []
    for index in range(runs):
        # the shared per-run seed formula (repro._rng.trial_seed) keeps
        # campaign-sharded dynamics trials bit-identical to this loop
        rng = coerce_rng(trial_seed(seed, index))
        start = start_factory(rng)
        start_state = GameState(
            start, alpha, traffic=traffic, cost_model=cost_model
        )
        instabilities.append(
            float(stability_factor(start_state, concept))
        )
        result = run_dynamics(
            start, alpha, concept,
            scheduler=scheduler, max_rounds=max_rounds, rng=rng,
            traffic=traffic, cost_model=cost_model,
        )
        converged += result.converged
        cycled += result.cycled
        rounds.append(result.rounds)
        qualities.append(quality_ratio(result.final))
        if not (result.final.weighted or result.final.modeled):
            rhos.append(result.final.rho())
    return ConvergenceStats(
        concept=concept,
        runs=runs,
        converged=converged,
        cycled=cycled,
        mean_rounds=statistics.fmean(rounds),
        mean_final_rho=(
            statistics.fmean(float(r) for r in rhos) if rhos else None
        ),
        worst_final_rho=float(max(rhos)) if rhos else None,
        mean_start_instability=statistics.fmean(instabilities),
        mean_final_quality=statistics.fmean(float(q) for q in qualities),
        worst_final_quality=float(max(qualities)),
    )
