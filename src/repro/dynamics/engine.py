"""The dynamics loop: apply improving moves until stability or a cap.

Improving dynamics in the BNCG need not converge in general (states can
cycle), so the engine records the full trajectory, detects revisited states,
and reports whether it stopped at an equilibrium, in a cycle, or at the
round cap.  When it stops because no improving move exists, the final state
*is* an equilibrium of the concept by construction — the tests double-check
this against the exact checkers.

Cost model: a trajectory performs **one** full APSP build total.  The first
``social_cost`` call materialises the start state's distance matrix; every
``state.apply(move)`` after that hands the matrix to the successor and
updates it in place through the incremental engine (``apply_add`` outer
minimum, ``apply_remove`` bridge split or affected-rows repair — see
:mod:`repro.graphs.distances`; the maintained bridge set rides along).
Move generators, schedulers and checkers that need "what if?" answers
evaluate on the same cached matrix through the
:class:`~repro.core.speculative.SpeculativeEvaluator` kernel: a round's
whole one-edge move pool is swept **rows-only** (add identity, bridge
split, probe BFS — no engine mutation at all), and only compound moves
speculate via raw **undo tokens** (``token = dm.apply_remove(u, v)`` …
read the repaired matrix … ``dm.undo(token)``).  Tokens are strictly
LIFO, and generators must close every token *before* yielding, so a
scheduler that abandons a half-drained generator can never leave the
shared matrix speculative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction

import networkx as nx

from repro.core.concepts import Concept
from repro.core.costmodel import CostModel
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.dynamics.movegen import improving_moves
from repro.dynamics.schedulers import Scheduler, first_improvement_scheduler

__all__ = ["DynamicsResult", "run_dynamics"]


@dataclass
class DynamicsResult:
    """Trajectory of one dynamics run."""

    final: GameState
    moves: list = field(default_factory=list)
    social_costs: list[Fraction] = field(default_factory=list)
    converged: bool = False
    cycled: bool = False
    rounds: int = 0

    @property
    def rho_trace(self) -> list[Fraction]:
        from repro.core.optimum import optimum_cost

        if self.final.weighted or self.final.modeled:
            raise ValueError(
                "rho_trace compares against the linear uniform optimum; "
                "weighted/modeled trajectories compare social_costs directly"
            )
        opt = optimum_cost(self.final.n, self.final.alpha)
        return [cost / opt for cost in self.social_costs]


def _graph_key(graph: nx.Graph) -> frozenset:
    return frozenset(frozenset(edge) for edge in graph.edges)


def run_dynamics(
    graph: nx.Graph,
    alpha,
    concept: Concept,
    scheduler: Scheduler = first_improvement_scheduler,
    max_rounds: int = 10_000,
    rng: random.Random | None = None,
    traffic: TrafficMatrix | None = None,
    cost_model: CostModel | None = None,
) -> DynamicsResult:
    """Run improving-move dynamics under ``concept`` from ``graph``.

    Returns a :class:`DynamicsResult`; ``converged`` means the final state
    admits no improving move of the concept's move space (within the
    generator's documented budget for BNE/BSE).  Pass ``traffic`` to run
    the dynamics under a heterogeneous demand matrix — move generation,
    scheduling and convergence all use the weighted costs.  Pass
    ``cost_model`` to run the generalized game: all costs route through
    the model's ``f``/aggregate (``LinearCost`` stays byte-identical to
    the default path).
    """
    if rng is None:
        rng = random.Random(0)
    state = GameState(graph, alpha, traffic=traffic, cost_model=cost_model)
    result = DynamicsResult(final=state)
    result.social_costs.append(state.social_cost())
    seen = {_graph_key(state.graph)}
    for _ in range(max_rounds):
        move = scheduler(state, improving_moves(state, concept, rng), rng)
        if move is None:
            result.converged = True
            break
        state = state.apply(move)
        result.moves.append(move)
        result.social_costs.append(state.social_cost())
        result.rounds += 1
        key = _graph_key(state.graph)
        if key in seen:
            result.cycled = True
            break
        seen.add(key)
    result.final = state
    return result
