"""Schedulers: which improving move fires when several are available.

A scheduler maps a non-empty iterator of improving moves to the move to
apply.  Determinism: ``first`` is fully deterministic; ``random`` is
deterministic given its ``random.Random``; ``best`` breaks ties by move
order.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.core.costs import agent_cost_after
from repro.core.moves import Move
from repro.core.state import GameState

__all__ = [
    "Scheduler",
    "best_improvement_scheduler",
    "first_improvement_scheduler",
    "random_improvement_scheduler",
]

Scheduler = Callable[[GameState, Iterator[Move], random.Random], Optional[Move]]


def first_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The first improving move in enumeration order."""
    return next(iter(moves), None)


def random_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """A uniformly random improving move (drains the generator)."""
    pool = list(moves)
    if not pool:
        return None
    return pool[rng.randrange(len(pool))]


def best_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The move with the largest total cost drop over its beneficiaries."""
    best_move: Move | None = None
    best_drop = None
    for move in moves:
        graph_after = move.apply(state.graph)
        drop = sum(
            state.cost(agent) - agent_cost_after(state, graph_after, agent)
            for agent in move.beneficiaries()
        )
        if best_drop is None or drop > best_drop:
            best_move = move
            best_drop = drop
    return best_move
