"""Schedulers: which improving move fires when several are available.

A scheduler maps a non-empty iterator of improving moves to the move to
apply.  Determinism: ``first`` is fully deterministic; ``random`` is
deterministic given its ``random.Random``; ``best`` breaks ties by move
order.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.core.moves import Move
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState

__all__ = [
    "Scheduler",
    "best_improvement_scheduler",
    "first_improvement_scheduler",
    "random_improvement_scheduler",
]

Scheduler = Callable[[GameState, Iterator[Move], random.Random], Optional[Move]]


def first_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The first improving move in enumeration order."""
    return next(iter(moves), None)


def random_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """A uniformly random improving move (reservoir sampling, O(1) memory).

    The generator is still drained — uniformity requires seeing every
    candidate — but the pool is never materialised: the k-th candidate
    replaces the current choice with probability ``1/k``, which makes
    every candidate equally likely no matter how long the stream is.
    Deterministic given its ``random.Random``; the selection frequencies
    match the old list-then-index implementation (seeded-equivalence
    tested), though individual seeds map to different candidates because
    the two consume the rng differently.
    """
    chosen = None
    for count, move in enumerate(moves, start=1):
        if rng.randrange(count) == 0:
            chosen = move
    return chosen


def best_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The move with the largest total cost drop over its beneficiaries.

    The round's whole move pool is swept rows-only on the speculative
    kernel (:meth:`~repro.core.speculative.SpeculativeEvaluator.best`):
    additions via the one-edge-add identity, bridge removals via the
    two-component split, other removals via probe BFS, swaps via a Fold
    split + extend — no per-candidate apply/undo on the cached engine,
    and bit-identical verdicts to the speculating path.
    """
    spec = SpeculativeEvaluator(state)
    chosen = spec.best(moves)
    if chosen is None:
        return None
    return chosen[0]
