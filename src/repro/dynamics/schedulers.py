"""Schedulers: which improving move fires when several are available.

A scheduler maps a non-empty iterator of improving moves to the move to
apply.  Determinism: ``first`` is fully deterministic; ``random`` is
deterministic given its ``random.Random``; ``best`` breaks ties by move
order.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.core.moves import Move
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState

__all__ = [
    "Scheduler",
    "best_improvement_scheduler",
    "first_improvement_scheduler",
    "random_improvement_scheduler",
]

Scheduler = Callable[[GameState, Iterator[Move], random.Random], Optional[Move]]


def first_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The first improving move in enumeration order."""
    return next(iter(moves), None)


def random_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """A uniformly random improving move (drains the generator)."""
    pool = list(moves)
    if not pool:
        return None
    return pool[rng.randrange(len(pool))]


def best_improvement_scheduler(
    state: GameState, moves: Iterator[Move], rng: random.Random
) -> Move | None:
    """The move with the largest total cost drop over its beneficiaries.

    Candidates are batch-evaluated on the speculative kernel (applied to
    the cached distance engine, measured, and undone) instead of paying a
    graph copy plus one BFS per beneficiary per candidate.
    """
    spec = SpeculativeEvaluator(state)
    chosen = spec.best(moves)
    if chosen is None:
        return None
    return chosen[0]
