"""Enumerate improving moves for each solution concept.

Each generator yields *certified* improving moves of the concept's move
type(s) in the given state.  The dynamics engine consumes these lazily, so
schedulers can stop at the first move or drain the generator to choose the
best one.

The move spaces mirror the concept definitions:

* ``RE``   — single removals;
* ``BAE``  — single mutual additions;
* ``PS``   — removals + additions;
* ``BSWE`` — swaps only;
* ``BGE``  — removals + additions + swaps;
* ``BNE``  — bounded neighborhood moves (exhaustive within small budgets,
  degrading to seeded probing when the pruned space is still too large);
* ``BSE``  — bounded coalition moves (via :func:`probe_coalition_moves`
  sampling, since exhaustive generation is exponential).

All candidate evaluation — here and in the searchers this module calls —
runs on the speculative kernel
(:class:`~repro.core.speculative.SpeculativeEvaluator`), so a trajectory
never pays a full APSP rebuild per candidate.  The engine's maintained
bridge set makes the one-edge pools cheap: bridge edges are skipped by
the removal generator without a BFS (they can never improve) and handled
by the swap generator with a mutation-free matrix split; schedulers then
batch-evaluate the round's whole pool rows-only
(:meth:`~repro.core.speculative.SpeculativeEvaluator.best`) instead of
per-candidate apply/undo.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

import numpy as np

from repro._alpha import strict_gt_threshold
from repro._rng import coerce_rng
from repro.core.concepts import Concept
from repro.core.moves import AddEdge, Move, RemoveEdge, Swap
from repro.core.state import GameState
from repro.equilibria.add import pairwise_add_gains
from repro.equilibria.neighborhood import (
    SearchBudgetExceeded,
    find_improving_neighborhood_move,
    probe_neighborhood_moves,
)
from repro.equilibria.remove import (
    modeled_improving_removals,
    weighted_improving_removals,
)
from repro.equilibria.strong import probe_coalition_moves
from repro.equilibria.swap import viable_swap_partners
from repro.graphs.distances import adjacency_bool
from repro.graphs.trees import tree_split_masks

__all__ = ["improving_moves", "move_generator_for"]


def _improving_removals(state: GameState) -> Iterator[RemoveEdge]:
    if state.modeled:
        # model values can be indifferent to a disconnection (zero demand
        # across the cut, or a max objective already pinned elsewhere), so
        # every edge is charged through the model; shared with the RE
        # checker so the two cannot disagree
        yield from modeled_improving_removals(state)
        return
    if state.weighted:
        # zero demand toward a bridge's far side makes its removal free,
        # so bridges cannot be skipped; the scan is shared with the RE
        # checker (repro.equilibria.remove) so the two cannot disagree
        yield from weighted_improving_removals(state)
        return
    dm = state.dist
    for u, v in list(state.graph.edges):
        # bridges can never be improving removals (disconnection costs at
        # least M - n > alpha); the maintained bridge set skips them
        # without any BFS
        if dm.is_bridge(u, v):
            continue
        # both endpoints' losses from one batched BFS call
        loss_u, loss_v = dm.remove_loss_pair(u, v)
        for actor, other, loss in ((u, v, loss_u), (v, u, loss_v)):
            if loss < state.alpha:
                yield RemoveEdge(actor=actor, other=other)
                break  # the edge can only be removed once


def _improving_additions(state: GameState) -> Iterator[AddEdge]:
    threshold = strict_gt_threshold(state.alpha)
    gains = pairwise_add_gains(state)
    mutual = (gains >= threshold) & (gains.T >= threshold)
    for u, v in np.argwhere(np.triu(mutual, k=1)):
        u, v = int(u), int(v)
        if not state.graph.has_edge(u, v):
            yield AddEdge(u, v)


def _improving_swaps_tree(state: GameState) -> Iterator[Swap]:
    dist = state.dist_matrix
    totals = dist.sum(axis=1)
    threshold = strict_gt_threshold(state.alpha)
    n = state.n
    for a, b in list(state.graph.edges):
        mask_a, mask_b = tree_split_masks(state.graph, a, b, n)
        sums_b = dist @ mask_b.astype(np.int64)
        sums_a = totals - sums_b
        size_a = int(mask_a.sum())
        size_b = n - size_a
        for actor, old, far_mask, far_sums, far_size, near_sums, near_size in (
            (a, b, mask_b, sums_b, size_b, sums_a, size_a),
            (b, a, mask_a, sums_a, size_a, sums_b, size_b),
        ):
            gain_actor = int(far_sums[actor]) - far_size - far_sums
            gain_partner = near_sums - near_size - int(near_sums[actor])
            viable = (gain_actor >= 1) & (gain_partner >= threshold) & far_mask
            viable[old] = False
            for new in np.flatnonzero(viable):
                yield Swap(actor=actor, old=old, new=int(new))


def _improving_swaps_general(state: GameState) -> Iterator[Swap]:
    """All improving swaps via speculative removal on the distance engine.

    Bridge edges never mutate the engine at all: the post-removal matrix
    is derived from the cached one by the two-component split
    (:meth:`~repro.graphs.distances.DistanceMatrix.matrix_after_bridge_removal`).
    Other edges apply the removal in place, read every candidate
    partner's gains from the repaired matrix with the one-edge-add identity,
    and undo the removal before yielding — so an abandoned generator can
    never leave the shared matrix in a speculative state.
    """
    dm = state.dist
    valuer = state.model_ops if state.modeled else None
    weights = (
        state.traffic.weights if state.weighted and valuer is None else None
    )
    if valuer is not None:
        totals = dm.ftotals()
    elif state.weighted:
        totals = dm.wtotals()
    else:
        totals = dm.totals()
    threshold = strict_gt_threshold(state.alpha)
    adjacency = adjacency_bool(state.graph)
    for a, b in list(state.graph.edges):
        found: list[Swap] = []
        if dm.is_bridge(a, b):
            removed = dm.matrix_after_bridge_removal(a, b)
            token = None
        else:
            token = dm.apply_remove(a, b)
            removed = dm.matrix
        try:
            for actor, old in ((a, b), (b, a)):
                for new in viable_swap_partners(
                    removed, totals, adjacency, threshold, actor, old,
                    weights=weights, valuer=valuer,
                ):
                    found.append(Swap(actor=actor, old=old, new=int(new)))
        finally:
            if token is not None:
                dm.undo(token)
        yield from found


def _improving_swaps(state: GameState) -> Iterator[Swap]:
    # the closed-form tree path vectorises uniform linear side sums;
    # weighted and modeled states take the general engine path
    # (mutation-free on trees, where every edge is a bridge)
    if state.is_tree() and not state.weighted and not state.modeled:
        yield from _improving_swaps_tree(state)
    else:
        yield from _improving_swaps_general(state)


def _improving_neighborhood(state: GameState, rng: random.Random | None):
    try:
        move = find_improving_neighborhood_move(state, max_evaluations=200_000)
    except SearchBudgetExceeded:
        # out-of-budget instances degrade to seeded probing (certified
        # moves only; a None simply yields nothing this round)
        move = probe_neighborhood_moves(state, coerce_rng(rng), samples=500)
    if move is not None:
        yield move


def _improving_coalitions(state: GameState, rng: random.Random | None):
    move = probe_coalition_moves(
        state, coerce_rng(rng), max_coalition_size=min(state.n, 4), samples=500
    )
    if move is not None:
        yield move


def improving_moves(
    state: GameState,
    concept: Concept,
    rng: random.Random | None = None,
) -> Iterator[Move]:
    """All improving moves of ``concept``'s move space in ``state``.

    BNE and BSE generation is budgeted/sampled (see module docstring); the
    polynomial concepts enumerate exhaustively.
    """
    if concept == Concept.RE:
        yield from _improving_removals(state)
    elif concept == Concept.BAE:
        yield from _improving_additions(state)
    elif concept == Concept.PS:
        yield from _improving_removals(state)
        yield from _improving_additions(state)
    elif concept == Concept.BSWE:
        yield from _improving_swaps(state)
    elif concept == Concept.BGE:
        yield from _improving_removals(state)
        yield from _improving_additions(state)
        yield from _improving_swaps(state)
    elif concept == Concept.BNE:
        yield from _improving_neighborhood(state, rng)
    elif concept == Concept.BSE:
        yield from _improving_coalitions(state, rng)
    else:
        raise ValueError(f"no move generator for {concept}")


def move_generator_for(
    concept: Concept,
) -> Callable[[GameState, random.Random | None], Iterator[Move]]:
    """Curried form of :func:`improving_moves` for one concept."""

    def generate(state: GameState, rng: random.Random | None = None):
        return improving_moves(state, concept, rng)

    return generate
