"""Improving-move dynamics: how decentralised agents reach (or miss) equilibria."""

from repro.dynamics.movegen import improving_moves, move_generator_for
from repro.dynamics.engine import DynamicsResult, run_dynamics
from repro.dynamics.convergence import ConvergenceStats, convergence_study
from repro.dynamics.schedulers import (
    best_improvement_scheduler,
    first_improvement_scheduler,
    random_improvement_scheduler,
)

__all__ = [
    "ConvergenceStats",
    "DynamicsResult",
    "best_improvement_scheduler",
    "convergence_study",
    "first_improvement_scheduler",
    "improving_moves",
    "move_generator_for",
    "random_improvement_scheduler",
    "run_dynamics",
]
